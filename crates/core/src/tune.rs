//! The variable-hash-length auto-tuner: the paper's defining knob
//! (per-layer hash widths trading accuracy for energy, §III-A/Fig. 5),
//! automated on top of the unified compilation pipeline.
//!
//! [`tune`] searches the smallest per-layer [`HashPlan`] whose accuracy
//! on a **tuning split** stays within [`TunerConfig::max_drop`] of the
//! all-1024 reference, then reports both plans' accuracy on the
//! **held-out split** the search never saw. The search is fully
//! deterministic: same model, data, split and config ⇒ bit-identical
//! plan and accuracies (pinned by `tuner_is_deterministic`).
//!
//! The pipeline refactor is what makes the search cheap: candidate
//! engines are assembled from a **per-(layer, width) tile cache** —
//! each weight tile is hashed once per width ever probed and swapped
//! into a cloned [`CompiledModel`], instead of re-hashing every layer of
//! every candidate from scratch as the pre-IR search did.
//!
//! Two strategies share the machinery:
//!
//! * [`SearchStrategy::BinaryMinimal`] — per layer, binary-search the
//!   supported widths (2 evaluations per layer instead of up to 3),
//!   then a greedy repair pass if joint lowering overshot the floor.
//! * The greedy ascending scan (via [`crate::analysis`]) — the
//!   pre-existing Fig. 5 search, preserved call-for-call.

use std::collections::HashMap;

use deepcam_hash::SUPPORTED_HASH_LENGTHS;
use deepcam_models::Cnn;
use deepcam_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::engine::{DeepCamEngine, EngineConfig};
use crate::error::CoreError;
use crate::hashplan::{HashPlan, PlanBinding};
use crate::ir::{dot_layer_weights, CompiledModel, CompiledTile, LayerIr};
use crate::passes::mapping::{search_mapping, MappingConfig, ModelMapping};
use crate::perf::PerfReport;
use crate::sched::CamScheduler;
use crate::Dataflow;
use crate::Result;

/// How the per-layer widths are searched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Binary search per layer over the supported widths — the default;
    /// `⌈log₂ 4⌉ = 2` evaluations per layer.
    BinaryMinimal,
    /// Ascending scan per layer, accepting the first width within
    /// tolerance — the historical Fig. 5 search shape.
    GreedyAscending,
}

/// Auto-tuner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Maximum accepted accuracy drop (absolute, on the tuning split)
    /// relative to the all-1024 reference.
    pub max_drop: f32,
    /// Mini-batch size for every evaluation.
    pub batch_size: usize,
    /// Fraction of the provided set used for tuning; the remainder is
    /// held out and only touched by the final report. The split is a
    /// deterministic prefix/suffix cut — shuffle upstream if needed.
    pub tune_fraction: f32,
    /// Search strategy.
    pub strategy: SearchStrategy,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            max_drop: 0.01,
            batch_size: 16,
            tune_fraction: 0.5,
            strategy: SearchStrategy::BinaryMinimal,
        }
    }
}

/// What the tuner found.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The selected per-layer plan.
    pub plan: HashPlan,
    /// The selected plan bound against the model's IR.
    pub binding: PlanBinding,
    /// All-1024 reference accuracy on the tuning split.
    pub reference_accuracy: f32,
    /// Tuned-plan accuracy on the tuning split.
    pub tuned_accuracy: f32,
    /// All-1024 reference accuracy on the held-out split.
    pub holdout_reference: f32,
    /// Tuned-plan accuracy on the held-out split.
    pub holdout_tuned: f32,
    /// Engine evaluations performed (search + reports).
    pub evaluations: usize,
    /// Mean tuned hash length (the energy headline's driver).
    pub mean_hash_len: f64,
    /// Whether the *held-out* accuracy drop also stayed within
    /// [`TunerConfig::max_drop`]. The search only constrains the tuning
    /// split; a `false` here means the tuned plan generalized worse than
    /// the budget and callers should surface a warning.
    pub holdout_within_budget: bool,
}

/// The tuner's acceptance rule, applied to a (reference, tuned) accuracy
/// pair: `tuned` may trail `reference` by at most `max_drop` (absolute).
/// Exposed so report consumers apply the *same* rule the search used.
pub fn holdout_within(max_drop: f32, reference: f32, tuned: f32) -> bool {
    tuned + max_drop >= reference
}

/// Candidate-engine factory: one compiled base plus a per-(layer, width)
/// tile cache. Assembling a candidate clones the base artifact and swaps
/// only the tiles whose width differs — weight hashing happens once per
/// (layer, width) ever probed.
struct Searcher<'a> {
    weights: Vec<&'a Tensor>,
    base_cfg: &'a EngineConfig,
    calibration: Option<&'a Tensor>,
    batch_size: usize,
    base: CompiledModel,
    cache: HashMap<(usize, usize), CompiledTile>,
    evaluations: usize,
}

impl<'a> Searcher<'a> {
    fn new(
        model: &'a Cnn,
        base_cfg: &'a EngineConfig,
        calibration: Option<&'a Tensor>,
        batch_size: usize,
    ) -> Result<Self> {
        let layers = model.dot_layer_count();
        let max_k = *SUPPORTED_HASH_LENGTHS.last().expect("non-empty");
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![max_k; layers]),
            ..base_cfg.clone()
        };
        let base = CompiledModel::compile(model, cfg)?;
        let mut cache = HashMap::new();
        for tile in base.tiles() {
            cache.insert((tile.layer_idx, tile.k), tile.clone());
        }
        Ok(Searcher {
            weights: dot_layer_weights(model),
            base_cfg,
            calibration,
            batch_size,
            base,
            cache,
            evaluations: 0,
        })
    }

    fn ensure_tile(&mut self, layer: usize, k: usize) -> Result<()> {
        if !self.cache.contains_key(&(layer, k)) {
            let tile = CompiledTile::compile(
                self.base.ir.dots[layer].shape.name.clone(),
                layer,
                k,
                self.base_cfg.seed.wrapping_add(layer as u64),
                self.weights[layer],
            )?;
            self.cache.insert((layer, k), tile);
        }
        Ok(())
    }

    /// Builds (and BN-calibrates, when configured) an engine for `ks`.
    fn engine_for(&mut self, ks: &[usize]) -> Result<DeepCamEngine> {
        for (layer, &k) in ks.iter().enumerate() {
            self.ensure_tile(layer, k)?;
        }
        let mut compiled = self.base.clone();
        compiled.config.plan = HashPlan::PerLayer(ks.to_vec());
        compiled.binding = compiled.config.plan.bind(&compiled.ir)?;
        let cache = &self.cache;
        compiled.for_each_tile_mut(&mut |tile| {
            let k = ks[tile.layer_idx];
            if tile.k != k {
                *tile = cache[&(tile.layer_idx, k)].clone();
            }
        });
        let mut engine = DeepCamEngine::from_compiled(compiled)?;
        if let Some(calib) = self.calibration {
            engine.calibrate_bn(calib)?;
        }
        Ok(engine)
    }

    fn eval(&mut self, ks: &[usize], images: &Tensor, labels: &[usize]) -> Result<f32> {
        let engine = self.engine_for(ks)?;
        self.evaluations += 1;
        engine.evaluate(images, labels, self.batch_size)
    }
}

/// Searches the smallest per-layer hash plan meeting the accuracy target
/// on a held-out calibration split.
///
/// `images`/`labels` are split into a front tuning portion and a back
/// held-out portion per [`TunerConfig::tune_fraction`]; `calibration`
/// (training images, never evaluation data) is applied as BN
/// recalibration to every candidate engine when provided.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] when the set is too small to
/// split or labels mismatch; propagates compile/inference errors.
pub fn tune(
    model: &Cnn,
    images: &Tensor,
    labels: &[usize],
    base: &EngineConfig,
    calibration: Option<&Tensor>,
    cfg: &TunerConfig,
) -> Result<TuneReport> {
    let n = images.shape().dim(0);
    if n != labels.len() {
        return Err(CoreError::InvalidInput(format!(
            "tune: {n} images but {} labels",
            labels.len()
        )));
    }
    if n < 2 {
        return Err(CoreError::InvalidInput(
            "tune: need at least 2 images to split".to_string(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.tune_fraction) {
        return Err(CoreError::InvalidInput(format!(
            "tune: tune_fraction {} outside [0, 1]",
            cfg.tune_fraction
        )));
    }
    let n_tune = ((n as f64 * f64::from(cfg.tune_fraction)).round() as usize).clamp(1, n - 1);
    let (tune_x, tune_y) = subset(images, labels, 0, n_tune)?;
    let (hold_x, hold_y) = subset(images, labels, n_tune, n)?;

    let layers = model.dot_layer_count();
    let max_k = *SUPPORTED_HASH_LENGTHS.last().expect("non-empty");
    let mut searcher = Searcher::new(model, base, calibration, cfg.batch_size)?;

    let max_ks = vec![max_k; layers];
    let reference = searcher.eval(&max_ks, &tune_x, &tune_y)?;

    let acceptable = |acc: f32| acc + cfg.max_drop >= reference;
    let mut ks = max_ks.clone();
    match cfg.strategy {
        SearchStrategy::BinaryMinimal => {
            for layer in 0..layers {
                // Smallest supported index whose accuracy clears the
                // floor, by bisection (the top index is the incumbent and
                // always acceptable in isolation).
                let (mut lo, mut hi) = (0usize, SUPPORTED_HASH_LENGTHS.len() - 1);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let mut trial = ks.clone();
                    trial[layer] = SUPPORTED_HASH_LENGTHS[mid];
                    if acceptable(searcher.eval(&trial, &tune_x, &tune_y)?) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                ks[layer] = SUPPORTED_HASH_LENGTHS[lo];
            }
        }
        SearchStrategy::GreedyAscending => {
            for layer in 0..layers {
                for &candidate in SUPPORTED_HASH_LENGTHS.iter() {
                    if candidate >= ks[layer] {
                        break; // candidates ascend; nothing smaller left
                    }
                    let mut trial = ks.clone();
                    trial[layer] = candidate;
                    if acceptable(searcher.eval(&trial, &tune_x, &tune_y)?) {
                        ks[layer] = candidate;
                        break; // smallest acceptable found
                    }
                }
            }
        }
    }

    // Per-layer choices were validated against plans whose *later*
    // layers were still wide; jointly they can overshoot the floor.
    // Repair deterministically: while the tuned plan misses the target,
    // widen the narrowest layer (first on ties) one supported step.
    let mut tuned_accuracy = searcher.eval(&ks, &tune_x, &tune_y)?;
    while !acceptable(tuned_accuracy) {
        let Some(widen) = ks
            .iter()
            .enumerate()
            .filter(|(_, &k)| k < max_k)
            .min_by_key(|(_, &k)| k)
            .map(|(i, _)| i)
        else {
            break; // everything is already at max
        };
        let pos = SUPPORTED_HASH_LENGTHS
            .iter()
            .position(|&k| k == ks[widen])
            .expect("tuned widths come from the supported set");
        ks[widen] = SUPPORTED_HASH_LENGTHS[pos + 1];
        tuned_accuracy = searcher.eval(&ks, &tune_x, &tune_y)?;
    }

    let holdout_reference = searcher.eval(&max_ks, &hold_x, &hold_y)?;
    let holdout_tuned = searcher.eval(&ks, &hold_x, &hold_y)?;

    let plan = HashPlan::PerLayer(ks);
    // The searcher's base artifact already holds the lowered IR — no
    // need to re-walk the model.
    let binding = plan.bind(&searcher.base.ir)?;
    let mean_hash_len = binding.mean_length();
    Ok(TuneReport {
        plan,
        binding,
        reference_accuracy: reference,
        tuned_accuracy,
        holdout_reference,
        holdout_tuned,
        evaluations: searcher.evaluations,
        mean_hash_len,
        holdout_within_budget: holdout_within(cfg.max_drop, holdout_reference, holdout_tuned),
    })
}

/// Configuration for [`tune_joint`]: the hash-length tuner plus the
/// array-mapping search it co-optimizes with.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JointTunerConfig {
    /// Hash-length search configuration.
    pub tuner: TunerConfig,
    /// Array-mapping search space.
    pub mapping: MappingConfig,
}

/// What the joint search found: the tuned plan, the mapping searched
/// *under that plan's widths*, and the modeled cost of the tuned plan on
/// the fixed 64-row chip versus the searched mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct JointTuneReport {
    /// The hash-length tuner's report (accuracy-constrained widths).
    pub tune: TuneReport,
    /// Per-layer array mapping searched under the tuned widths.
    pub mapping: ModelMapping,
    /// Tuned plan costed on the fixed 64-row activation-stationary chip
    /// (the pre-mapping scheduler baseline).
    pub fixed: PerfReport,
    /// Tuned plan costed under `mapping` — the joint optimum. Its CAM
    /// search energy never exceeds `fixed`'s (the fixed geometry is in
    /// the search space).
    pub mapped: PerfReport,
}

/// Co-optimizes per-layer hash lengths **and** the CAM array mapping:
/// runs the accuracy-constrained width search ([`tune`]), then searches
/// the mapping space *at the tuned widths* — so tile geometry is chosen
/// for the hash lengths actually deployed, not the all-1024 reference.
///
/// # Errors
///
/// Everything [`tune`] returns, plus mapping-search errors
/// ([`CoreError::InvalidPlan`] on an empty candidate space).
pub fn tune_joint(
    model: &Cnn,
    images: &Tensor,
    labels: &[usize],
    base: &EngineConfig,
    calibration: Option<&Tensor>,
    cfg: &JointTunerConfig,
) -> Result<JointTuneReport> {
    let report = tune(model, images, labels, base, calibration, &cfg.tuner)?;
    let ir = LayerIr::from_cnn(model)?;
    // The scheduler here is the historical fixed-geometry baseline; the
    // mapping search borrows its cost model and overrides the geometry
    // per candidate.
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary)?;
    let fixed = sched.run_ir(&ir, &report.binding, report.plan.label())?;
    let mapping = search_mapping(&sched, &ir, &report.binding, &cfg.mapping)?;
    let mapped = sched.run_ir_mapped(&ir, &report.binding, &mapping, report.plan.label())?;
    Ok(JointTuneReport {
        tune: report,
        mapping,
        fixed,
        mapped,
    })
}

/// Outcome of the greedy Fig. 5 search (the [`crate::analysis`] shape).
pub(crate) struct GreedyOutcome {
    pub(crate) ks: Vec<usize>,
    pub(crate) reference: f32,
    pub(crate) final_accuracy: f32,
    pub(crate) evaluations: usize,
}

/// The historical greedy ascending search, preserved evaluation-for-
/// evaluation (same candidate sequence, same accept rule, same counts)
/// but running on the tile-cached candidate factory.
pub(crate) fn greedy_search(
    model: &Cnn,
    images: &Tensor,
    labels: &[usize],
    base: &EngineConfig,
    tolerance: f32,
    batch_size: usize,
    calibration: Option<&Tensor>,
) -> Result<GreedyOutcome> {
    let layers = model.dot_layer_count();
    let max_k = *SUPPORTED_HASH_LENGTHS.last().expect("non-empty");
    let mut searcher = Searcher::new(model, base, calibration, batch_size)?;
    let mut ks = vec![max_k; layers];
    let reference = searcher.eval(&ks, images, labels)?;
    for layer in 0..layers {
        for &candidate in SUPPORTED_HASH_LENGTHS.iter() {
            if candidate >= ks[layer] {
                break; // candidates are ascending; nothing smaller left
            }
            let mut trial = ks.clone();
            trial[layer] = candidate;
            let acc = searcher.eval(&trial, images, labels)?;
            if acc + tolerance >= reference {
                ks = trial;
                break; // smallest acceptable found (ascending order)
            }
        }
    }
    let final_accuracy = searcher.eval(&ks, images, labels)?;
    Ok(GreedyOutcome {
        ks,
        reference,
        final_accuracy,
        evaluations: searcher.evaluations,
    })
}

/// Copies images/labels `start..end` into standalone buffers.
fn subset(
    images: &Tensor,
    labels: &[usize],
    start: usize,
    end: usize,
) -> Result<(Tensor, Vec<usize>)> {
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut dims = vec![end - start];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    Ok((
        Tensor::from_vec(
            images.data()[start * sample..end * sample].to_vec(),
            Shape::new(&dims),
        )?,
        labels[start..end].to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::scaled::scaled_lenet5;
    use deepcam_tensor::rng::{fill_normal, seeded_rng};

    fn toy_images(n: usize) -> (Tensor, Vec<usize>) {
        // Same two-class structure as the trainer tests: class 0 lights
        // the top half, class 1 the bottom half.
        let mut rng = seeded_rng(11);
        let mut data = vec![0.0f32; n * 784];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            let img = &mut data[i * 784..(i + 1) * 784];
            fill_normal(&mut rng, img, 0.0, 0.3);
            let rows = if class == 0 { 0..14 } else { 14..28 };
            for r in rows {
                for c in 0..28 {
                    img[r * 28 + c] += 1.2;
                }
            }
        }
        (
            Tensor::from_vec(data, Shape::new(&[n, 1, 28, 28])).unwrap(),
            labels,
        )
    }

    fn trained_lenet() -> Cnn {
        let mut rng = seeded_rng(1);
        let mut model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_images(16);
        let cfg = deepcam_models::train::TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..deepcam_models::train::TrainConfig::default()
        };
        deepcam_models::train::train(&mut model, &x, &y, &cfg).unwrap();
        model
    }

    #[test]
    fn tuner_produces_valid_plan_and_holdout_report() {
        let model = trained_lenet();
        let (x, y) = toy_images(24);
        let report = tune(
            &model,
            &x,
            &y,
            &EngineConfig::default(),
            None,
            &TunerConfig {
                max_drop: 0.1,
                batch_size: 8,
                ..TunerConfig::default()
            },
        )
        .unwrap();
        match &report.plan {
            HashPlan::PerLayer(ks) => {
                assert_eq!(ks.len(), 5);
                assert!(ks.iter().all(|k| SUPPORTED_HASH_LENGTHS.contains(k)));
            }
            other => panic!("expected per-layer plan, got {other:?}"),
        }
        assert_eq!(report.binding.len(), 5);
        assert!(report.tuned_accuracy + 0.1 >= report.reference_accuracy);
        for acc in [
            report.reference_accuracy,
            report.tuned_accuracy,
            report.holdout_reference,
            report.holdout_tuned,
        ] {
            assert!((0.0..=1.0).contains(&acc));
        }
        // Binary search: reference + ≤2/layer + final + 2 holdout
        // (+ repair rounds, which a 0.1 tolerance never triggers here).
        assert!(report.evaluations >= 4);
        assert!(report.mean_hash_len >= 256.0 && report.mean_hash_len <= 1024.0);
    }

    #[test]
    fn tuner_is_deterministic() {
        let model = trained_lenet();
        let (x, y) = toy_images(20);
        let cfg = TunerConfig {
            max_drop: 0.05,
            batch_size: 8,
            ..TunerConfig::default()
        };
        let a = tune(&model, &x, &y, &EngineConfig::default(), None, &cfg).unwrap();
        let b = tune(&model, &x, &y, &EngineConfig::default(), None, &cfg).unwrap();
        assert_eq!(a, b); // plan, accuracies and counts, bit-for-bit
    }

    #[test]
    fn generous_target_shrinks_everything() {
        // max_drop 1.0 accepts any accuracy → every layer drops to 256,
        // under both strategies.
        let mut rng = seeded_rng(2);
        let model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_images(8);
        for strategy in [
            SearchStrategy::BinaryMinimal,
            SearchStrategy::GreedyAscending,
        ] {
            let report = tune(
                &model,
                &x,
                &y,
                &EngineConfig::default(),
                None,
                &TunerConfig {
                    max_drop: 1.0,
                    batch_size: 8,
                    strategy,
                    ..TunerConfig::default()
                },
            )
            .unwrap();
            match &report.plan {
                HashPlan::PerLayer(ks) => {
                    assert!(ks.iter().all(|&k| k == 256), "{strategy:?}: {ks:?}")
                }
                other => panic!("expected per-layer plan, got {other:?}"),
            }
            assert_eq!(report.mean_hash_len, 256.0);
        }
    }

    #[test]
    fn tuner_rejects_degenerate_inputs() {
        let mut rng = seeded_rng(3);
        let model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_images(4);
        let cfg = TunerConfig::default();
        assert!(matches!(
            tune(&model, &x, &y[..3], &EngineConfig::default(), None, &cfg),
            Err(CoreError::InvalidInput(_))
        ));
        let (one_x, one_y) = toy_images(1);
        assert!(matches!(
            tune(&model, &one_x, &one_y, &EngineConfig::default(), None, &cfg),
            Err(CoreError::InvalidInput(_))
        ));
        let bad = TunerConfig {
            tune_fraction: 1.5,
            ..TunerConfig::default()
        };
        assert!(matches!(
            tune(&model, &x, &y, &EngineConfig::default(), None, &bad),
            Err(CoreError::InvalidInput(_))
        ));
    }

    #[test]
    fn holdout_budget_rule_matches_search_acceptance() {
        // Same rule as the search's `acceptable` closure, including the
        // boundary: a drop of exactly max_drop is within budget.
        assert!(holdout_within(0.01, 0.90, 0.90));
        assert!(holdout_within(0.01, 0.90, 0.89));
        assert!(!holdout_within(0.01, 0.90, 0.888));
        // A held-out *gain* is always within budget.
        assert!(holdout_within(0.0, 0.90, 0.95));
        assert!(holdout_within(1.0, 1.0, 0.0));
    }

    #[test]
    fn report_flags_holdout_violations() {
        let model = trained_lenet();
        let (x, y) = toy_images(24);
        // Generous budget: whatever the holdout split does, it's within
        // a 1.0 drop.
        let report = tune(
            &model,
            &x,
            &y,
            &EngineConfig::default(),
            None,
            &TunerConfig {
                max_drop: 1.0,
                batch_size: 8,
                ..TunerConfig::default()
            },
        )
        .unwrap();
        assert!(report.holdout_within_budget);
        // The flag must agree with the exposed rule on the report's own
        // numbers, whatever they are.
        assert_eq!(
            report.holdout_within_budget,
            holdout_within(1.0, report.holdout_reference, report.holdout_tuned)
        );
    }

    #[test]
    fn joint_tuning_never_loses_to_the_fixed_chip() {
        let model = trained_lenet();
        let (x, y) = toy_images(20);
        let cfg = JointTunerConfig {
            tuner: TunerConfig {
                max_drop: 0.1,
                batch_size: 8,
                ..TunerConfig::default()
            },
            ..JointTunerConfig::default()
        };
        let joint = tune_joint(&model, &x, &y, &EngineConfig::default(), None, &cfg).unwrap();
        assert_eq!(joint.mapping.per_layer.len(), 5);
        // The fixed 64-row AS geometry is in the search space, so the
        // searched mapping can never cost more CAM search energy.
        assert!(
            joint.mapped.energy.cam_search <= joint.fixed.energy.cam_search,
            "mapped {} > fixed {}",
            joint.mapped.energy.cam_search,
            joint.fixed.energy.cam_search
        );
        // Both reports cost the *tuned* plan, not the reference.
        assert_eq!(joint.fixed.layers.len(), 5);
        assert_eq!(joint.mapped.layers.len(), 5);
        // Deterministic end to end.
        let again = tune_joint(&model, &x, &y, &EngineConfig::default(), None, &cfg).unwrap();
        assert_eq!(joint, again);
    }

    #[test]
    fn cached_candidates_match_fresh_compiles_bitwise() {
        // The tile cache must be invisible: a candidate engine assembled
        // by the searcher computes the same logits as compiling the
        // plan from scratch.
        let model = trained_lenet();
        let base = EngineConfig::default();
        let mut searcher = Searcher::new(&model, &base, None, 8).unwrap();
        let ks = [256usize, 512, 256, 768, 1024];
        let cached = searcher.engine_for(&ks).unwrap();
        let fresh = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::PerLayer(ks.to_vec()),
                ..base
            },
        )
        .unwrap();
        let (x, _) = toy_images(4);
        assert_eq!(
            cached.infer(&x).unwrap().data(),
            fresh.infer(&x).unwrap().data()
        );
    }
}
