//! Opt-in per-dot-layer timing, for the hot-path benchmarks.
//!
//! The `hotpath_speedup` bench bin needs a per-layer breakdown of where
//! inference time goes, for both the packed fast path and the frozen
//! `reference` baseline. Rather than plumb timing
//! sinks through every call signature, the engine records one
//! [`DotSample`] per `dot_rows` invocation into a process-global buffer
//! — but **only while a caller has switched the profiler on**; the hot
//! loop's only steady-state cost is one relaxed atomic load.
//!
//! ```
//! use deepcam_core::profile;
//!
//! profile::enable();
//! // ... run engine inference ...
//! let samples = profile::disable_and_take();
//! assert!(samples.is_empty() || samples[0].seconds >= 0.0);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One timed `dot_rows` call (one layer × one mini-batch × one worker
/// sharding decision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotSample {
    /// Dot-layer index in traversal order.
    pub layer_idx: usize,
    /// Patch rows processed by the call.
    pub rows: usize,
    /// Kernel contexts compared against each row.
    pub m: usize,
    /// Hash width of the layer.
    pub k: usize,
    /// Wall-clock seconds of the whole call (projection + Hamming +
    /// post-processing arithmetic).
    pub seconds: f64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLES: Mutex<Vec<DotSample>> = Mutex::new(Vec::new());

/// Switches sampling on and clears previously collected samples.
pub fn enable() {
    SAMPLES.lock().expect("profiler lock").clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Switches sampling off and returns everything collected since
/// [`enable`].
pub fn disable_and_take() -> Vec<DotSample> {
    ENABLED.store(false, Ordering::SeqCst);
    std::mem::take(&mut *SAMPLES.lock().expect("profiler lock"))
}

/// Cheap steady-state check used by the engine before timing anything.
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one sample (no-op when sampling is off — callers check
/// [`enabled`] first to avoid even the `Instant` reads).
pub(crate) fn record(sample: DotSample) {
    if enabled() {
        SAMPLES.lock().expect("profiler lock").push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the global profiler state: intra-binary parallelism
    // would make separate enable/disable tests race each other.
    #[test]
    fn enable_take_round_trip_and_disabled_noop() {
        let _ = disable_and_take();
        record(DotSample {
            layer_idx: 0,
            rows: 1,
            m: 1,
            k: 1,
            seconds: 0.5,
        });
        assert!(disable_and_take().is_empty(), "disabled profiler records");
        enable();
        record(DotSample {
            layer_idx: 3,
            rows: 10,
            m: 4,
            k: 256,
            seconds: 0.25,
        });
        let samples = disable_and_take();
        // Other tests' engine runs may interleave while the profiler is
        // on, so assert containment rather than exact length.
        assert!(samples
            .iter()
            .any(|s| s.layer_idx == 3 && s.seconds == 0.25));
        // Taking drains the buffer.
        assert!(disable_and_take().is_empty());
    }
}
