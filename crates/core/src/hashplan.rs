//! Hash-length assignment across a network's dot-product layers.
//!
//! The paper's *variable hash length encoding strategy* (§III-A, Fig. 5):
//! every CNN layer gets the minimum hash length that preserves accuracy,
//! instead of provisioning the worst-case length everywhere. The CAM's
//! chunked word (256/512/768/1024 bits) provides the discrete choices.

use deepcam_hash::SUPPORTED_HASH_LENGTHS;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::ir::LayerIr;
use crate::Result;

/// A hash length for every dot-product layer of a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashPlan {
    /// The same length for all layers (the Fig. 10 baselines: 256-bit
    /// "DeepCAM-256", 1024-bit "Max DeepCAM").
    Uniform(usize),
    /// One length per dot-product layer, in execution order (the paper's
    /// VHL configuration).
    PerLayer(Vec<usize>),
}

impl HashPlan {
    /// The paper's homogeneous minimal configuration (Fig. 10 baseline).
    pub fn uniform_min() -> Self {
        HashPlan::Uniform(256)
    }

    /// "Max DeepCAM": homogeneous 1024-bit words.
    pub fn uniform_max() -> Self {
        HashPlan::Uniform(1024)
    }

    /// A shape-driven variable plan for weight-free model specs, where no
    /// accuracy search is possible: longer patch vectors get longer
    /// hashes. Rationale: the Hamming angle estimator's resolution must
    /// cover the richer angular structure of high-dimensional patches,
    /// and this matches the qualitative Fig. 5 finding that wide middle
    /// layers need longer hashes than narrow early/late layers.
    ///
    /// Thresholds map im2col length `n` to `{256, 512, 768, 1024}` at
    /// `n ≤ 128 / ≤ 1152 / ≤ 2560 / larger`.
    pub fn variable_for_dims(patch_lens: &[usize]) -> Self {
        HashPlan::PerLayer(
            patch_lens
                .iter()
                .map(|&n| {
                    if n <= 128 {
                        256
                    } else if n <= 1152 {
                        512
                    } else if n <= 2560 {
                        768
                    } else {
                        1024
                    }
                })
                .collect(),
        )
    }

    /// The hash length for dot-product layer `layer` (0-based, execution
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when a per-layer plan is too
    /// short for the requested index.
    pub fn length_for(&self, layer: usize) -> Result<usize> {
        match self {
            HashPlan::Uniform(k) => Ok(*k),
            HashPlan::PerLayer(ks) => ks.get(layer).copied().ok_or_else(|| {
                CoreError::InvalidPlan(format!(
                    "plan has {} entries, layer {layer} requested",
                    ks.len()
                ))
            }),
        }
    }

    /// Returns `true` when `k` is a CAM-supported hash width — the one
    /// membership rule shared by [`HashPlan::validate`] and
    /// [`HashPlan::bind`].
    fn width_supported(k: usize) -> bool {
        SUPPORTED_HASH_LENGTHS.contains(&k)
    }

    /// Validates every length against the CAM-supported set and (for
    /// per-layer plans) the expected layer count.
    ///
    /// Prefer [`HashPlan::bind`] when a lowered [`LayerIr`] is at hand;
    /// its messages name real layers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] with a description of the first
    /// violation.
    pub fn validate(&self, expected_layers: usize) -> Result<()> {
        match self {
            HashPlan::Uniform(k) => {
                if !Self::width_supported(*k) {
                    return Err(CoreError::InvalidPlan(format!(
                        "uniform hash length {k} not in {SUPPORTED_HASH_LENGTHS:?}"
                    )));
                }
            }
            HashPlan::PerLayer(ks) => {
                if ks.len() != expected_layers {
                    return Err(CoreError::InvalidPlan(format!(
                        "plan has {} entries for a {expected_layers}-layer model",
                        ks.len()
                    )));
                }
                for (i, &k) in ks.iter().enumerate() {
                    if !Self::width_supported(k) {
                        return Err(CoreError::InvalidPlan(format!(
                            "hash length {k} at dot layer {i} not in {SUPPORTED_HASH_LENGTHS:?}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Mean hash length over `layers` layers (diagnostic; drives the
    /// headline energy saving).
    pub fn mean_length(&self, layers: usize) -> f64 {
        match self {
            HashPlan::Uniform(k) => *k as f64,
            HashPlan::PerLayer(ks) => {
                if ks.is_empty() {
                    0.0
                } else {
                    ks.iter().take(layers.max(1)).sum::<usize>() as f64
                        / ks.len().min(layers.max(1)) as f64
                }
            }
        }
    }

    /// Short label for figure legends.
    pub fn label(&self) -> String {
        match self {
            HashPlan::Uniform(k) => format!("uniform-{k}"),
            HashPlan::PerLayer(_) => "variable".to_string(),
        }
    }

    /// Resolves this plan against a lowered model: validates every length
    /// and the layer count, and returns the per-layer assignment.
    ///
    /// This is the one place plans meet models in the compilation
    /// pipeline (`ModelSpec`/`Cnn` → [`LayerIr`] → [`PlanBinding`] →
    /// [`CompiledModel`](crate::ir::CompiledModel)); every violation
    /// message names the offending dot layer by index *and* lowered name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] describing the first violation.
    pub fn bind(&self, ir: &LayerIr) -> Result<PlanBinding> {
        let layers = ir.dots.len();
        let ks: Vec<usize> = match self {
            HashPlan::Uniform(k) => {
                if !Self::width_supported(*k) {
                    return Err(CoreError::InvalidPlan(format!(
                        "uniform hash length {k} not in {SUPPORTED_HASH_LENGTHS:?}"
                    )));
                }
                vec![*k; layers]
            }
            HashPlan::PerLayer(ks) => {
                if ks.len() != layers {
                    return Err(CoreError::InvalidPlan(format!(
                        "plan has {} entries but model '{}' has {layers} dot layers",
                        ks.len(),
                        ir.model_name
                    )));
                }
                for (i, &k) in ks.iter().enumerate() {
                    if !Self::width_supported(k) {
                        return Err(CoreError::InvalidPlan(format!(
                            "hash length {k} at dot layer {i} ('{}') not in \
                             {SUPPORTED_HASH_LENGTHS:?}",
                            ir.dots[i].shape.name
                        )));
                    }
                }
                ks.clone()
            }
        };
        Ok(PlanBinding { ks })
    }
}

/// A [`HashPlan`] resolved and validated against a lowered model: exactly
/// one supported hash length per dot layer, in traversal order.
///
/// Produced by [`HashPlan::bind`]; consumed by the engine compiler, the
/// scheduler ([`crate::sched::CamScheduler::run_ir`]) and the auto-tuner.
/// Holding a `PlanBinding` is proof the plan fits the model it was bound
/// against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanBinding {
    ks: Vec<usize>,
}

impl PlanBinding {
    /// The bound length of every dot layer, traversal order.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// The bound hash length of dot layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range — a binding always covers the
    /// model it was bound against.
    pub fn k_for(&self, layer: usize) -> usize {
        self.ks[layer]
    }

    /// Number of dot layers covered.
    pub fn len(&self) -> usize {
        self.ks.len()
    }

    /// Returns `true` for a zero-layer binding.
    pub fn is_empty(&self) -> bool {
        self.ks.is_empty()
    }

    /// Mean bound hash length (drives the headline energy saving).
    pub fn mean_length(&self) -> f64 {
        if self.ks.is_empty() {
            0.0
        } else {
            self.ks.iter().sum::<usize>() as f64 / self.ks.len() as f64
        }
    }

    /// The binding as an explicit per-layer plan.
    pub fn to_plan(&self) -> HashPlan {
        HashPlan::PerLayer(self.ks.clone())
    }
}

impl serde::bin::BinCodec for HashPlan {
    fn encode(&self, w: &mut serde::bin::Writer) {
        match self {
            HashPlan::Uniform(k) => {
                w.put_u8(0);
                w.put_usize(*k);
            }
            HashPlan::PerLayer(ks) => {
                w.put_u8(1);
                ks.encode(w);
            }
        }
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(HashPlan::Uniform(r.get_usize()?)),
            1 => Ok(HashPlan::PerLayer(serde::bin::BinCodec::decode(r)?)),
            other => Err(serde::bin::BinError::Invalid(format!(
                "HashPlan tag {other}"
            ))),
        }
    }
}

impl serde::bin::BinCodec for PlanBinding {
    fn encode(&self, w: &mut serde::bin::Writer) {
        self.ks.encode(w);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        Ok(PlanBinding {
            ks: serde::bin::BinCodec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_lengths() {
        let p = HashPlan::Uniform(512);
        assert_eq!(p.length_for(0).unwrap(), 512);
        assert_eq!(p.length_for(99).unwrap(), 512);
        assert!(p.validate(5).is_ok());
    }

    #[test]
    fn unsupported_length_rejected() {
        assert!(HashPlan::Uniform(300).validate(3).is_err());
        assert!(HashPlan::PerLayer(vec![256, 300]).validate(2).is_err());
    }

    #[test]
    fn per_layer_count_checked() {
        let p = HashPlan::PerLayer(vec![256, 512]);
        assert!(p.validate(3).is_err());
        assert!(p.validate(2).is_ok());
        assert!(p.length_for(2).is_err());
    }

    #[test]
    fn variable_for_dims_thresholds() {
        let p = HashPlan::variable_for_dims(&[25, 150, 1152, 2304, 4608]);
        match p {
            HashPlan::PerLayer(ks) => assert_eq!(ks, vec![256, 512, 512, 768, 1024]),
            _ => panic!("expected per-layer plan"),
        }
    }

    #[test]
    fn mean_length() {
        assert_eq!(HashPlan::Uniform(256).mean_length(4), 256.0);
        let p = HashPlan::PerLayer(vec![256, 768]);
        assert_eq!(p.mean_length(2), 512.0);
    }

    #[test]
    fn labels() {
        assert_eq!(HashPlan::uniform_max().label(), "uniform-1024");
        assert_eq!(HashPlan::PerLayer(vec![256]).label(), "variable");
    }

    fn toy_ir(names: &[&str]) -> crate::ir::LayerIr {
        use deepcam_models::DotLayer;
        crate::ir::LayerIr {
            model_name: "ToyNet".into(),
            workload: "ToyNet".into(),
            preamble: Vec::new(),
            dots: names
                .iter()
                .enumerate()
                .map(|(index, name)| crate::ir::DotIr {
                    index,
                    kind: crate::ir::DotKind::Linear,
                    shape: DotLayer {
                        name: (*name).to_string(),
                        p: 1,
                        m: 4,
                        n: 8,
                        input_elems: 8,
                    },
                    peripherals: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn bind_produces_per_layer_assignment() {
        let ir = toy_ir(&["conv1", "fc1"]);
        let b = HashPlan::Uniform(512).bind(&ir).unwrap();
        assert_eq!(b.ks(), &[512, 512]);
        assert_eq!(b.k_for(1), 512);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.mean_length(), 512.0);
        assert_eq!(b.to_plan(), HashPlan::PerLayer(vec![512, 512]));
        let v = HashPlan::PerLayer(vec![256, 1024]).bind(&ir).unwrap();
        assert_eq!(v.mean_length(), 640.0);
    }

    #[test]
    fn bind_error_names_offending_layer() {
        let ir = toy_ir(&["conv1", "conv2", "fc1"]);
        let err = HashPlan::PerLayer(vec![256, 300, 512])
            .bind(&ir)
            .unwrap_err();
        match err {
            CoreError::InvalidPlan(msg) => {
                assert!(msg.contains("hash length 300"), "{msg}");
                assert!(msg.contains("dot layer 1"), "{msg}");
                assert!(msg.contains("'conv2'"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn bind_error_names_model_on_count_mismatch() {
        let ir = toy_ir(&["conv1", "conv2", "fc1"]);
        let err = HashPlan::PerLayer(vec![256]).bind(&ir).unwrap_err();
        match err {
            CoreError::InvalidPlan(msg) => {
                assert!(msg.contains("plan has 1 entries"), "{msg}");
                assert!(msg.contains("'ToyNet'"), "{msg}");
                assert!(msg.contains("3 dot layers"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn bind_error_for_unsupported_uniform() {
        let ir = toy_ir(&["fc1"]);
        let err = HashPlan::Uniform(100).bind(&ir).unwrap_err();
        match err {
            CoreError::InvalidPlan(msg) => {
                assert!(msg.contains("uniform hash length 100"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }
}
