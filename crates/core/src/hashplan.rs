//! Hash-length assignment across a network's dot-product layers.
//!
//! The paper's *variable hash length encoding strategy* (§III-A, Fig. 5):
//! every CNN layer gets the minimum hash length that preserves accuracy,
//! instead of provisioning the worst-case length everywhere. The CAM's
//! chunked word (256/512/768/1024 bits) provides the discrete choices.

use deepcam_hash::SUPPORTED_HASH_LENGTHS;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::Result;

/// A hash length for every dot-product layer of a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashPlan {
    /// The same length for all layers (the Fig. 10 baselines: 256-bit
    /// "DeepCAM-256", 1024-bit "Max DeepCAM").
    Uniform(usize),
    /// One length per dot-product layer, in execution order (the paper's
    /// VHL configuration).
    PerLayer(Vec<usize>),
}

impl HashPlan {
    /// The paper's homogeneous minimal configuration (Fig. 10 baseline).
    pub fn uniform_min() -> Self {
        HashPlan::Uniform(256)
    }

    /// "Max DeepCAM": homogeneous 1024-bit words.
    pub fn uniform_max() -> Self {
        HashPlan::Uniform(1024)
    }

    /// A shape-driven variable plan for weight-free model specs, where no
    /// accuracy search is possible: longer patch vectors get longer
    /// hashes. Rationale: the Hamming angle estimator's resolution must
    /// cover the richer angular structure of high-dimensional patches,
    /// and this matches the qualitative Fig. 5 finding that wide middle
    /// layers need longer hashes than narrow early/late layers.
    ///
    /// Thresholds map im2col length `n` to `{256, 512, 768, 1024}` at
    /// `n ≤ 128 / ≤ 1152 / ≤ 2560 / larger`.
    pub fn variable_for_dims(patch_lens: &[usize]) -> Self {
        HashPlan::PerLayer(
            patch_lens
                .iter()
                .map(|&n| {
                    if n <= 128 {
                        256
                    } else if n <= 1152 {
                        512
                    } else if n <= 2560 {
                        768
                    } else {
                        1024
                    }
                })
                .collect(),
        )
    }

    /// The hash length for dot-product layer `layer` (0-based, execution
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when a per-layer plan is too
    /// short for the requested index.
    pub fn length_for(&self, layer: usize) -> Result<usize> {
        match self {
            HashPlan::Uniform(k) => Ok(*k),
            HashPlan::PerLayer(ks) => ks.get(layer).copied().ok_or_else(|| {
                CoreError::InvalidPlan(format!(
                    "plan has {} entries, layer {layer} requested",
                    ks.len()
                ))
            }),
        }
    }

    /// Validates every length against the CAM-supported set and (for
    /// per-layer plans) the expected layer count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] with a description of the first
    /// violation.
    pub fn validate(&self, expected_layers: usize) -> Result<()> {
        let check = |k: usize| -> Result<()> {
            if SUPPORTED_HASH_LENGTHS.contains(&k) {
                Ok(())
            } else {
                Err(CoreError::InvalidPlan(format!(
                    "hash length {k} not in {SUPPORTED_HASH_LENGTHS:?}"
                )))
            }
        };
        match self {
            HashPlan::Uniform(k) => check(*k),
            HashPlan::PerLayer(ks) => {
                if ks.len() != expected_layers {
                    return Err(CoreError::InvalidPlan(format!(
                        "plan has {} entries for a {expected_layers}-layer model",
                        ks.len()
                    )));
                }
                ks.iter().try_for_each(|&k| check(k))
            }
        }
    }

    /// Mean hash length over `layers` layers (diagnostic; drives the
    /// headline energy saving).
    pub fn mean_length(&self, layers: usize) -> f64 {
        match self {
            HashPlan::Uniform(k) => *k as f64,
            HashPlan::PerLayer(ks) => {
                if ks.is_empty() {
                    0.0
                } else {
                    ks.iter().take(layers.max(1)).sum::<usize>() as f64
                        / ks.len().min(layers.max(1)) as f64
                }
            }
        }
    }

    /// Short label for figure legends.
    pub fn label(&self) -> String {
        match self {
            HashPlan::Uniform(k) => format!("uniform-{k}"),
            HashPlan::PerLayer(_) => "variable".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_lengths() {
        let p = HashPlan::Uniform(512);
        assert_eq!(p.length_for(0).unwrap(), 512);
        assert_eq!(p.length_for(99).unwrap(), 512);
        assert!(p.validate(5).is_ok());
    }

    #[test]
    fn unsupported_length_rejected() {
        assert!(HashPlan::Uniform(300).validate(3).is_err());
        assert!(HashPlan::PerLayer(vec![256, 300]).validate(2).is_err());
    }

    #[test]
    fn per_layer_count_checked() {
        let p = HashPlan::PerLayer(vec![256, 512]);
        assert!(p.validate(3).is_err());
        assert!(p.validate(2).is_ok());
        assert!(p.length_for(2).is_err());
    }

    #[test]
    fn variable_for_dims_thresholds() {
        let p = HashPlan::variable_for_dims(&[25, 150, 1152, 2304, 4608]);
        match p {
            HashPlan::PerLayer(ks) => assert_eq!(ks, vec![256, 512, 512, 768, 1024]),
            _ => panic!("expected per-layer plan"),
        }
    }

    #[test]
    fn mean_length() {
        assert_eq!(HashPlan::Uniform(256).mean_length(4), 256.0);
        let p = HashPlan::PerLayer(vec![256, 768]);
        assert_eq!(p.mean_length(2), 512.0);
    }

    #[test]
    fn labels() {
        assert_eq!(HashPlan::uniform_max().label(), "uniform-1024");
        assert_eq!(HashPlan::PerLayer(vec![256]).label(), "variable");
    }
}
