//! The functional DeepCAM inference engine.
//!
//! [`DeepCamEngine::compile`] turns a trained [`Cnn`] into the deployment
//! artifact the paper describes: per-layer projection matrices, weight
//! contexts (norm + hash per kernel), and a pipeline of digital
//! peripheral steps. [`DeepCamEngine::infer`] then runs real inference:
//!
//! 1. im2col the layer input and hash every patch with the layer's
//!    projection (the on-chip crossbar; optional device noise),
//! 2. Hamming-compare against the stored kernel contexts — functionally
//!    what the CAM array does in parallel,
//! 3. reconstruct each output as
//!    `‖a‖·‖w‖·cos(π·HD/k)` with eq. 5 cosine and minifloat norms,
//! 4. run ReLU/pool/batch-norm/bias exactly (digital post-processing).
//!
//! The result is the "DC" accuracy of the paper's Fig. 5, directly
//! comparable to the float model's "BL" accuracy.

use deepcam_hash::context::ContextSet;
use deepcam_hash::geometric::{CosineMode, GeometricDot, NormMode};
use deepcam_hash::{BitVec, ContextGenerator, Minifloat8};
use deepcam_models::{Block, Cnn, ResBlock};
use deepcam_tensor::ops::conv::{im2col, Conv2dConfig};
use deepcam_tensor::ops::norm::BN_EPS;
use deepcam_tensor::ops::pool::{avg_pool2d, max_pool2d, PoolConfig};
use deepcam_tensor::rng::{seeded_rng, standard_normal};
use deepcam_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::hashplan::HashPlan;
use crate::Result;

/// Functional engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hash length per dot layer.
    pub plan: HashPlan,
    /// Base seed for the per-layer projection matrices.
    pub seed: u64,
    /// Cosine evaluation (eq. 5 by default).
    pub cosine: CosineMode,
    /// Norm quantization (8-bit minifloat by default).
    pub norm: NormMode,
    /// Crossbar device-noise level for *activation* hashing: standard
    /// deviation of the analog disturbance relative to the patch norm
    /// (0.0 = ideal device). Weight hashes are software-generated and
    /// always clean.
    pub crossbar_noise: f32,
    /// Worker threads for patch hashing (0 = all available cores).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            plan: HashPlan::uniform_max(),
            seed: 0xDEE9CA4,
            cosine: CosineMode::default(),
            norm: NormMode::default(),
            crossbar_noise: 0.0,
            threads: 0,
        }
    }
}

/// One compiled pipeline step.
enum Step {
    Conv {
        cfg: Conv2dConfig,
        proj: Tensor, // [n, k]
        weights: ContextSet,
        bias: Vec<f32>,
        k: usize,
        layer_idx: usize,
    },
    Linear {
        proj: Tensor, // [n, k]
        weights: ContextSet,
        bias: Vec<f32>,
        k: usize,
        layer_idx: usize,
    },
    Bn {
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        var: Vec<f32>,
    },
    Relu,
    MaxPool(PoolConfig),
    AvgPool(PoolConfig),
    Flatten,
    Residual {
        body: Vec<Step>,
        shortcut: Option<Vec<Step>>,
    },
}

/// A trained CNN compiled for CAM-based inference.
pub struct DeepCamEngine {
    steps: Vec<Step>,
    cfg: EngineConfig,
    dot_layers: usize,
    model_name: String,
}

impl DeepCamEngine {
    /// Compiles a trained model under a configuration.
    ///
    /// Dot layers are numbered in traversal order (residual bodies before
    /// their shortcuts), matching
    /// [`deepcam_models::Cnn::dot_layer_count`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when the plan does not cover
    /// the model, or hashing errors when a layer's geometry is invalid.
    pub fn compile(model: &Cnn, cfg: EngineConfig) -> Result<Self> {
        let total = model.dot_layer_count();
        cfg.plan.validate(total)?;
        let mut idx = 0usize;
        let steps = compile_blocks(&model.blocks, &cfg, &mut idx)?;
        debug_assert_eq!(idx, total);
        Ok(DeepCamEngine {
            steps,
            cfg,
            dot_layers: total,
            model_name: model.name.clone(),
        })
    }

    /// Number of dot-product layers compiled to CAM form.
    pub fn dot_layers(&self) -> usize {
        self.dot_layers
    }

    /// Name of the source model.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Runs inference on an NCHW batch, returning logits `[N, classes]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (batch/model mismatch).
    pub fn infer(&self, batch: &Tensor) -> Result<Tensor> {
        let mut cur = batch.clone();
        for step in &self.steps {
            cur = self.run_step(step, &cur)?;
        }
        Ok(cur)
    }

    /// Recalibrates every batch-norm stage's running statistics under the
    /// *approximate* datapath, using `images` as the calibration set.
    ///
    /// The float model's BN statistics describe float activations; after
    /// dot-products are replaced by hash-based approximations, the
    /// activation distribution shifts (the eq. 5 cosine has a positive
    /// bias and the Hamming estimator adds variance), and the mismatch
    /// compounds across deep networks. Recomputing BN statistics under
    /// the deployed arithmetic is the standard compute-in-memory
    /// calibration step and substantially recovers deep-model accuracy
    /// (see EXPERIMENTS.md, Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates inference errors.
    pub fn calibrate_bn(&mut self, images: &Tensor) -> Result<()> {
        let cfg = self.cfg.clone();
        let mut steps = std::mem::take(&mut self.steps);
        let result = calibrate_steps(&mut steps, images.clone(), &cfg);
        self.steps = steps;
        result.map(|_| ())
    }

    /// Top-1 accuracy over a labelled set, processed in mini-batches.
    ///
    /// # Errors
    ///
    /// Propagates inference errors.
    pub fn evaluate(&self, images: &Tensor, labels: &[usize], batch_size: usize) -> Result<f32> {
        let n = images.shape().dim(0);
        assert_eq!(n, labels.len(), "label count must match image count");
        let sample: usize = images.shape().dims()[1..].iter().product();
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size.max(1)).min(n);
            let mut dims = vec![end - start];
            dims.extend_from_slice(&images.shape().dims()[1..]);
            let chunk = Tensor::from_vec(
                images.data()[start * sample..end * sample].to_vec(),
                Shape::new(&dims),
            )?;
            let logits = self.infer(&chunk)?;
            let classes = logits.shape().dim(1);
            for (row, &label) in labels[start..end].iter().enumerate() {
                let slice = &logits.data()[row * classes..(row + 1) * classes];
                let mut best = 0usize;
                for (j, &v) in slice.iter().enumerate() {
                    if v > slice[best] {
                        best = j;
                    }
                }
                if best == label {
                    correct += 1;
                }
            }
            start = end;
        }
        Ok(correct as f32 / n.max(1) as f32)
    }

    fn run_step(&self, step: &Step, x: &Tensor) -> Result<Tensor> {
        run_step(step, x, &self.cfg)
    }
}

fn run_step(step: &Step, x: &Tensor, cfg: &EngineConfig) -> Result<Tensor> {
    {
        match step {
            Step::Conv {
                cfg: conv_cfg,
                proj,
                weights,
                bias,
                k,
                layer_idx,
            } => {
                let (n_batch, _c, h, w) = x
                    .shape()
                    .as_nchw()
                    .ok_or_else(|| CoreError::Unsupported("conv input must be NCHW".to_string()))?;
                let (oh, ow) = conv_cfg.output_hw(h, w);
                let patches = im2col(x, conv_cfg)?; // [N*P, n]
                let out2d = dot_rows(&patches, proj, weights, *k, *layer_idx, cfg)?;
                // Permute [N*P, M] -> [N, M, OH, OW] and add bias.
                let p = oh * ow;
                let m = weights.len();
                let mut out = vec![0.0f32; n_batch * m * p];
                for ni in 0..n_batch {
                    for pi in 0..p {
                        let row = (ni * p + pi) * m;
                        for (mi, &b) in bias.iter().enumerate() {
                            out[(ni * m + mi) * p + pi] = out2d[row + mi] + b;
                        }
                    }
                }
                Ok(Tensor::from_vec(out, Shape::new(&[n_batch, m, oh, ow]))?)
            }
            Step::Linear {
                proj,
                weights,
                bias,
                k,
                layer_idx,
            } => {
                let out2d = dot_rows(x, proj, weights, *k, *layer_idx, cfg)?;
                let n_batch = x.shape().dim(0);
                let m = weights.len();
                let mut out = out2d;
                for ni in 0..n_batch {
                    for (mi, &b) in bias.iter().enumerate() {
                        out[ni * m + mi] += b;
                    }
                }
                Ok(Tensor::from_vec(out, Shape::new(&[n_batch, m]))?)
            }
            Step::Bn {
                gamma,
                beta,
                mean,
                var,
            } => {
                let (n, c, h, w) = x.shape().as_nchw().ok_or_else(|| {
                    CoreError::Unsupported("batch norm input must be NCHW".to_string())
                })?;
                let mut out = x.clone();
                for ni in 0..n {
                    for ci in 0..c {
                        let inv = 1.0 / (var[ci] + BN_EPS).sqrt();
                        let base = (ni * c + ci) * h * w;
                        for v in &mut out.data_mut()[base..base + h * w] {
                            *v = gamma[ci] * (*v - mean[ci]) * inv + beta[ci];
                        }
                    }
                }
                Ok(out)
            }
            Step::Relu => Ok(x.map(|v| v.max(0.0))),
            Step::MaxPool(p) => Ok(max_pool2d(x, p)?.0),
            Step::AvgPool(p) => Ok(avg_pool2d(x, p)?),
            Step::Flatten => {
                let n = x.shape().dim(0);
                let rest = x.len() / n.max(1);
                Ok(x.clone().reshape(Shape::new(&[n, rest]))?)
            }
            Step::Residual { body, shortcut } => {
                let mut main = x.clone();
                for s in body {
                    main = run_step(s, &main, cfg)?;
                }
                let skip = match shortcut {
                    Some(sc) => {
                        let mut t = x.clone();
                        for s in sc {
                            t = run_step(s, &t, cfg)?;
                        }
                        t
                    }
                    None => x.clone(),
                };
                Ok(main.add(&skip)?.map(|v| v.max(0.0)))
            }
        }
    }
}

/// Walks the pipeline forwarding `x`, replacing every batch-norm stage's
/// statistics with the batch statistics of its *approximate-datapath*
/// input.
fn calibrate_steps(steps: &mut [Step], x: Tensor, cfg: &EngineConfig) -> Result<Tensor> {
    let mut cur = x;
    for step in steps.iter_mut() {
        cur = match step {
            Step::Bn { mean, var, .. } => {
                let (n, c, h, w) = cur.shape().as_nchw().ok_or_else(|| {
                    CoreError::Unsupported("batch norm input must be NCHW".to_string())
                })?;
                let count = (n * h * w).max(1) as f32;
                let mut new_mean = vec![0.0f32; c];
                let mut new_var = vec![0.0f32; c];
                for ni in 0..n {
                    for (ci, m) in new_mean.iter_mut().enumerate() {
                        let base = (ni * c + ci) * h * w;
                        for &v in &cur.data()[base..base + h * w] {
                            *m += v;
                        }
                    }
                }
                for m in &mut new_mean {
                    *m /= count;
                }
                for ni in 0..n {
                    for (ci, nv) in new_var.iter_mut().enumerate() {
                        let base = (ni * c + ci) * h * w;
                        for &v in &cur.data()[base..base + h * w] {
                            let d = v - new_mean[ci];
                            *nv += d * d;
                        }
                    }
                }
                for v in &mut new_var {
                    *v /= count;
                }
                *mean = new_mean;
                *var = new_var;
                run_step(step, &cur, cfg)?
            }
            Step::Residual { body, shortcut } => {
                let main = calibrate_steps(body, cur.clone(), cfg)?;
                let skip = match shortcut {
                    Some(sc) => calibrate_steps(sc, cur.clone(), cfg)?,
                    None => cur.clone(),
                };
                main.add(&skip)?.map(|v| v.max(0.0))
            }
            other => run_step(other, &cur, cfg)?,
        };
    }
    Ok(cur)
}

/// The heart of the engine: approximate dot-products of every row of
/// `rows [R, n]` against every stored kernel context, via hashing and
/// Hamming distance. Returns a flat `[R * M]` buffer.
fn dot_rows(
    rows: &Tensor,
    proj: &Tensor,
    weights: &ContextSet,
    k: usize,
    layer_idx: usize,
    engine_cfg: &EngineConfig,
) -> Result<Vec<f32>> {
    {
        let r = rows.shape().dim(0);
        let n = rows.shape().dim(1);
        let m = weights.len();
        let mut out = vec![0.0f32; r * m];
        let threads = if engine_cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            engine_cfg.threads
        };
        let chunk_rows = r.div_ceil(threads.max(1)).max(1);
        let noise = engine_cfg.crossbar_noise;
        let cosine = engine_cfg.cosine;
        let norm_mode = engine_cfg.norm;
        let seed = engine_cfg.seed;

        let row_data = rows.data();
        let out_chunks: Vec<(usize, &mut [f32])> = {
            let mut chunks = Vec::new();
            let mut rest = out.as_mut_slice();
            let mut start = 0usize;
            while !rest.is_empty() {
                let take = (chunk_rows * m).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                chunks.push((start, head));
                rest = tail;
                start += take / m;
            }
            chunks
        };

        std::thread::scope(|scope| {
            for (row_start, out_chunk) in out_chunks {
                let rows_here = out_chunk.len() / m;
                scope.spawn(move || {
                    // Batched projection of this chunk: [rows_here, n] x [n, k].
                    let chunk = Tensor::from_vec(
                        row_data[row_start * n..(row_start + rows_here) * n].to_vec(),
                        Shape::new(&[rows_here, n]),
                    )
                    .expect("chunk volume is consistent");
                    let projected = chunk
                        .matmul(proj)
                        .expect("projection dims match by construction");
                    for local in 0..rows_here {
                        let patch = &row_data[(row_start + local) * n..(row_start + local + 1) * n];
                        let norm = patch.iter().map(|&v| v * v).sum::<f32>().sqrt();
                        let mut pre = projected.data()[local * k..(local + 1) * k].to_vec();
                        if noise > 0.0 {
                            // Per-patch deterministic RNG: disturbances are
                            // reproducible across runs and threads.
                            let mut rng = seeded_rng(
                                seed ^ ((layer_idx as u64) << 40)
                                    ^ ((row_start + local) as u64).wrapping_mul(0x9E3779B97F4A7C15),
                            );
                            for v in &mut pre {
                                *v += noise * norm * standard_normal(&mut rng) as f32;
                            }
                        }
                        let bits = BitVec::from_signs(&pre);
                        let a_norm = match norm_mode {
                            NormMode::Minifloat8 => Minifloat8::quantize(norm),
                            NormMode::Fp32 => norm,
                        };
                        for (mi, wctx) in weights.iter().enumerate() {
                            let hd = bits
                                .hamming(&wctx.bits)
                                .expect("weight and activation hashes share k");
                            let theta = GeometricDot::angle_from_hamming(hd, k);
                            let w_norm = match norm_mode {
                                NormMode::Minifloat8 => wctx.quantized_norm(),
                                NormMode::Fp32 => wctx.norm,
                            };
                            out_chunk[local * m + mi] = a_norm * w_norm * cosine.eval(theta);
                        }
                    }
                });
            }
        });
        Ok(out)
    }
}

fn compile_blocks(blocks: &[Block], cfg: &EngineConfig, idx: &mut usize) -> Result<Vec<Step>> {
    let mut steps = Vec::with_capacity(blocks.len());
    for block in blocks {
        match block {
            Block::Conv(conv) => {
                let k = cfg.plan.length_for(*idx)?;
                let n = conv.cfg.patch_len();
                let gen = ContextGenerator::new(n, k, cfg.seed.wrapping_add(*idx as u64))?;
                let weights = gen.weight_contexts(&conv.weight.value)?;
                steps.push(Step::Conv {
                    cfg: conv.cfg,
                    proj: gen.projection().to_tensor(),
                    weights,
                    bias: conv.bias.value.data().to_vec(),
                    k,
                    layer_idx: *idx,
                });
                *idx += 1;
            }
            Block::Linear(lin) => {
                let k = cfg.plan.length_for(*idx)?;
                let n = lin.weight.value.shape().dim(1);
                let gen = ContextGenerator::new(n, k, cfg.seed.wrapping_add(*idx as u64))?;
                let weights = gen.weight_contexts(&lin.weight.value)?;
                steps.push(Step::Linear {
                    proj: gen.projection().to_tensor(),
                    weights,
                    bias: lin.bias.value.data().to_vec(),
                    k,
                    layer_idx: *idx,
                });
                *idx += 1;
            }
            Block::Bn(bn) => steps.push(Step::Bn {
                gamma: bn.gamma.value.data().to_vec(),
                beta: bn.beta.value.data().to_vec(),
                mean: bn.running_mean.clone(),
                var: bn.running_var.clone(),
            }),
            Block::Relu(_) => steps.push(Step::Relu),
            Block::MaxPool(p) => steps.push(Step::MaxPool(p.cfg)),
            Block::AvgPool(p) => steps.push(Step::AvgPool(p.cfg)),
            Block::Flatten(_) => steps.push(Step::Flatten),
            Block::Residual(ResBlock { body, shortcut, .. }) => {
                let body_steps = compile_blocks(body, cfg, idx)?;
                let shortcut_steps = match shortcut {
                    Some(s) => Some(compile_blocks(s, cfg, idx)?),
                    None => None,
                };
                steps.push(Step::Residual {
                    body: body_steps,
                    shortcut: shortcut_steps,
                });
            }
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::scaled::{scaled_lenet5, scaled_resnet18};
    use deepcam_tensor::rng::seeded_rng;
    use deepcam_tensor::Layer;

    fn tiny_batch(n: usize) -> Tensor {
        let mut rng = seeded_rng(5);
        deepcam_tensor::init::normal(&mut rng, Shape::new(&[n, 1, 28, 28]), 0.0, 1.0)
    }

    #[test]
    fn compile_counts_layers() {
        let mut rng = seeded_rng(0);
        let model = scaled_lenet5(&mut rng, 10);
        let engine = DeepCamEngine::compile(&model, EngineConfig::default()).unwrap();
        assert_eq!(engine.dot_layers(), 5);
        assert_eq!(engine.model_name(), "LeNet5");
    }

    #[test]
    fn infer_shapes() {
        let mut rng = seeded_rng(1);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let logits = engine.infer(&tiny_batch(3)).unwrap();
        assert_eq!(logits.shape(), &Shape::new(&[3, 10]));
        assert!(logits.all_finite());
    }

    #[test]
    fn tracks_float_model_outputs() {
        // At k=1024 with exact cosine + fp32 norms, the engine's logits
        // should correlate strongly with the float model's.
        let mut rng = seeded_rng(2);
        let mut model = scaled_lenet5(&mut rng, 10);
        let x = tiny_batch(4);
        let float_logits = model.forward(&x, false).unwrap();
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(1024),
            cosine: CosineMode::Exact,
            norm: NormMode::Fp32,
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let dc_logits = engine.infer(&x).unwrap();
        // Pearson correlation across all logits.
        let a = float_logits.data();
        let b = dc_logits.data();
        let ma = a.iter().sum::<f32>() / a.len() as f32;
        let mb = b.iter().sum::<f32>() / b.len() as f32;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (a[i] - ma) * (b[i] - mb);
            va += (a[i] - ma).powi(2);
            vb += (b[i] - mb).powi(2);
        }
        let corr = cov / (va.sqrt() * vb.sqrt()).max(1e-9);
        assert!(corr > 0.5, "correlation {corr}");
    }

    #[test]
    fn plan_must_cover_model() {
        let mut rng = seeded_rng(3);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![256; 3]),
            ..EngineConfig::default()
        };
        assert!(matches!(
            DeepCamEngine::compile(&model, cfg),
            Err(CoreError::InvalidPlan(_))
        ));
    }

    #[test]
    fn residual_model_compiles_and_runs() {
        let mut rng = seeded_rng(4);
        let model = scaled_resnet18(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        assert_eq!(engine.dot_layers(), 21);
        let mut rng2 = seeded_rng(6);
        let x = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[2, 3, 32, 32]), 0.0, 1.0);
        let logits = engine.infer(&x).unwrap();
        assert_eq!(logits.shape(), &Shape::new(&[2, 10]));
        assert!(logits.all_finite());
    }

    #[test]
    fn noise_changes_outputs_deterministically() {
        let mut rng = seeded_rng(7);
        let model = scaled_lenet5(&mut rng, 10);
        let x = tiny_batch(2);
        let mk = |noise: f32| {
            let cfg = EngineConfig {
                plan: HashPlan::Uniform(256),
                crossbar_noise: noise,
                ..EngineConfig::default()
            };
            DeepCamEngine::compile(&model, cfg)
                .unwrap()
                .infer(&x)
                .unwrap()
        };
        let clean = mk(0.0);
        let noisy1 = mk(0.5);
        let noisy2 = mk(0.5);
        assert_ne!(clean.data(), noisy1.data());
        assert_eq!(noisy1.data(), noisy2.data()); // deterministic noise
    }

    #[test]
    fn calibrate_bn_changes_stats_and_keeps_shapes() {
        let mut rng = seeded_rng(9);
        let model = deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let mut engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let mut rng2 = seeded_rng(10);
        let calib = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[4, 3, 32, 32]), 0.0, 1.0);
        let before = engine.infer(&calib).unwrap();
        engine.calibrate_bn(&calib).unwrap();
        let after = engine.infer(&calib).unwrap();
        assert_eq!(before.shape(), after.shape());
        assert!(after.all_finite());
        // Calibration must actually change the BN statistics (and hence
        // the logits) for a model whose float stats are untrained.
        assert_ne!(before.data(), after.data());
    }

    #[test]
    fn evaluate_bounds() {
        let mut rng = seeded_rng(8);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(6);
        let labels = vec![0usize; 6];
        let acc = engine.evaluate(&x, &labels, 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
