//! The functional DeepCAM inference engine — the runtime stage of the
//! compilation pipeline (see [`crate::ir`]).
//!
//! [`DeepCamEngine::compile`] lowers a trained [`Cnn`] through the shared
//! pipeline (`Cnn → LayerIr → PlanBinding → CompiledModel`) and builds
//! the runtime view on top; [`DeepCamEngine::from_compiled`] builds the
//! same runtime from a deserialized artifact, so a model compiled once
//! and [`CompiledModel::save`]d can be served without recompiling — with
//! **bit-identical** logits. [`DeepCamEngine::infer`] then runs real
//! inference:
//!
//! 1. im2col the layer input and hash every patch with the layer's
//!    projection (the on-chip crossbar; optional device noise),
//! 2. Hamming-compare against the stored kernel contexts — functionally
//!    what the CAM array does in parallel,
//! 3. reconstruct each output as
//!    `‖a‖·‖w‖·cos(π·HD/k)` with eq. 5 cosine and minifloat norms,
//! 4. run ReLU/pool/batch-norm/bias exactly (digital post-processing).
//!
//! The result is the "DC" accuracy of the paper's Fig. 5, directly
//! comparable to the float model's "BL" accuracy.
//!
//! The artifact stores only seeds, packed hashes and raw norms; the
//! projection matrices, cosine LUTs and mode-quantized norms the inner
//! loops read are *derived* here, deterministically, in
//! `RuntimeTile`-building — the same derivation whether the artifact
//! came from an in-memory compile or from disk.

use deepcam_hash::bitvec::pack_signs_into;
use deepcam_hash::context::{Context, ContextSet};
use deepcam_hash::geometric::{CosineMode, GeometricDot, NormMode};
use deepcam_hash::{Minifloat8, ProjectionMatrix};
use deepcam_models::Cnn;
use deepcam_tensor::ops::conv::{im2col_sharded, Conv2dConfig};
use deepcam_tensor::ops::norm::BN_EPS;
use deepcam_tensor::ops::pool::{avg_pool2d, max_pool2d};
use deepcam_tensor::pool::{split_ranges, Parallelism, ThreadPool};
use deepcam_tensor::rng::{seeded_rng, standard_normal};
use deepcam_tensor::tensor::matmul_dense_into;
use deepcam_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::hashplan::HashPlan;
use crate::ir::{BnParams, CompiledModel, CompiledStep, CompiledTile};
use crate::Result;

/// Functional engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hash length per dot layer.
    pub plan: HashPlan,
    /// Base seed for the per-layer projection matrices.
    pub seed: u64,
    /// Cosine evaluation (eq. 5 by default).
    pub cosine: CosineMode,
    /// Norm quantization (8-bit minifloat by default).
    pub norm: NormMode,
    /// Crossbar device-noise level for *activation* hashing: standard
    /// deviation of the analog disturbance relative to the patch norm
    /// (0.0 = ideal device). Weight hashes are software-generated and
    /// always clean.
    pub crossbar_noise: f32,
    /// Worker parallelism for patch hashing and batched inference.
    ///
    /// Any setting produces **bit-identical** outputs — parallelism only
    /// changes wall clock (see `tests/parallel_equivalence.rs`). The
    /// [`Parallelism::Auto`] default honors the `DEEPCAM_WORKERS`
    /// environment variable.
    pub parallelism: Parallelism,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            plan: HashPlan::uniform_max(),
            seed: 0xDEE9CA4,
            cosine: CosineMode::default(),
            norm: NormMode::default(),
            crossbar_noise: 0.0,
            parallelism: Parallelism::Auto,
        }
    }
}

impl serde::bin::BinCodec for EngineConfig {
    fn encode(&self, w: &mut serde::bin::Writer) {
        self.plan.encode(w);
        w.put_u64(self.seed);
        self.cosine.encode(w);
        self.norm.encode(w);
        w.put_f32(self.crossbar_noise);
        self.parallelism.encode(w);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        Ok(EngineConfig {
            plan: serde::bin::BinCodec::decode(r)?,
            seed: r.get_u64()?,
            cosine: serde::bin::BinCodec::decode(r)?,
            norm: serde::bin::BinCodec::decode(r)?,
            crossbar_noise: r.get_f32()?,
            parallelism: serde::bin::BinCodec::decode(r)?,
        })
    }
}

/// Per-dot-layer state *derived* from a [`CompiledTile`] + config at
/// engine-build time: everything the artifact deliberately does not
/// store because it is a deterministic function of what it does store.
pub(crate) struct RuntimeTile {
    /// Layer projection `[n, k]` (the on-chip crossbar weights),
    /// regenerated from the tile's seed.
    pub(crate) proj: Tensor,
    /// Per-kernel contexts rebuilt from the packed tile + raw norms —
    /// read only by the frozen [`reference`](`crate::reference`)
    /// datapath and tests, so they are derived lazily on first use (the
    /// fast path reads the packed tile directly and never pays the
    /// per-bit reconstruction).
    weights: std::sync::OnceLock<ContextSet>,
    /// Per-kernel norms with the engine's `NormMode` already applied.
    pub(crate) w_norms: Vec<f32>,
    /// `cos_lut[hd] = cosine.eval((π/k)·hd)` for `hd ∈ 0..=k`: the only
    /// k+1 values the angle/cosine pipeline can ever produce at this
    /// layer width. Layers sharing a hash width share one allocation
    /// (the LUT is a pure function of `(k, CosineMode)`, and the cosine
    /// mode is fixed per engine) — less memory and better cache locality
    /// when consecutive layers run at the same width.
    pub(crate) cos_lut: std::sync::Arc<Vec<f32>>,
}

impl RuntimeTile {
    /// The single derivation both construction paths share — in-memory
    /// compile and artifact load build *identical* runtime state, which
    /// is what makes save→load→infer bit-exact. `luts` caches cosine
    /// LUTs by hash width across the tiles of one engine build.
    fn derive(
        tile: &CompiledTile,
        cfg: &EngineConfig,
        luts: &mut std::collections::HashMap<usize, std::sync::Arc<Vec<f32>>>,
    ) -> Self {
        let proj = ProjectionMatrix::generate(tile.n, tile.k, tile.seed).to_tensor();
        let w_norms = tile
            .norms
            .iter()
            .map(|&norm| match cfg.norm {
                // Identical to `Context::quantized_norm` on the lazily
                // rebuilt contexts below: both round-trip through
                // `Minifloat8::from_f32`.
                NormMode::Minifloat8 => Minifloat8::from_f32(norm).to_f32(),
                NormMode::Fp32 => norm,
            })
            .collect();
        let cos_lut = luts
            .entry(tile.k)
            .or_insert_with(|| {
                std::sync::Arc::new(
                    (0..=tile.k)
                        .map(|hd| {
                            cfg.cosine
                                .eval(GeometricDot::angle_from_hamming(hd, tile.k))
                        })
                        .collect(),
                )
            })
            .clone();
        RuntimeTile {
            proj,
            weights: std::sync::OnceLock::new(),
            w_norms,
            cos_lut,
        }
    }

    /// The layer's kernel contexts, rebuilt from the packed tile on
    /// first request (thread-safe; the reference datapath runs sharded).
    fn weights(&self, tile: &CompiledTile) -> &ContextSet {
        self.weights.get_or_init(|| {
            let contexts: Vec<Context> = (0..tile.packed.rows())
                .map(|row| {
                    let norm = tile.norms[row];
                    Context {
                        norm,
                        norm_q: Minifloat8::from_f32(norm),
                        bits: tile.packed.row_bitvec(row),
                    }
                })
                .collect();
            ContextSet {
                contexts,
                hash_len: tile.k,
                source_dim: tile.n,
            }
        })
    }
}

/// Which dot-product datapath a pipeline walk uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DotPath {
    /// The packed-tile + cosine-LUT kernels (production).
    Fast,
    /// The frozen pre-optimization scalar path
    /// ([`crate::reference`]) — differential oracle and bench baseline.
    Reference,
}

/// A compiled model plus its derived runtime state, ready to serve.
pub struct DeepCamEngine {
    compiled: CompiledModel,
    /// One derived tile per dot layer, indexed by traversal index.
    tiles: Vec<RuntimeTile>,
}

impl DeepCamEngine {
    /// Compiles a trained model under a configuration — shorthand for
    /// [`CompiledModel::compile`] + [`DeepCamEngine::from_compiled`].
    ///
    /// Dot layers are numbered in traversal order (residual bodies before
    /// their shortcuts), matching
    /// [`deepcam_models::Cnn::dot_layer_count`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] (naming the offending layer)
    /// when the plan does not cover the model, or hashing errors when a
    /// layer's geometry is invalid.
    pub fn compile(model: &Cnn, cfg: EngineConfig) -> Result<Self> {
        Self::from_compiled(CompiledModel::compile(model, cfg)?)
    }

    /// Builds the runtime for a compiled artifact (fresh from
    /// [`CompiledModel::compile`] or reloaded via
    /// [`CompiledModel::load`]). Logits are bit-identical either way —
    /// `tests/compiled_model_roundtrip.rs` enforces it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] when the artifact is structurally
    /// inconsistent.
    pub fn from_compiled(compiled: CompiledModel) -> Result<Self> {
        compiled.validate()?;
        let mut luts = std::collections::HashMap::new();
        let tiles = compiled
            .tiles()
            .into_iter()
            .map(|t| RuntimeTile::derive(t, &compiled.config, &mut luts))
            .collect();
        Ok(DeepCamEngine { compiled, tiles })
    }

    /// Loads an artifact from disk and builds its runtime — the serving
    /// path for models compiled in a previous process.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledModel::load`] and
    /// [`DeepCamEngine::from_compiled`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::from_compiled(CompiledModel::load(path)?)
    }

    /// The underlying compiled artifact (serialize it with
    /// [`CompiledModel::save`]).
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// Consumes the engine, returning the compiled artifact.
    pub fn into_compiled(self) -> CompiledModel {
        self.compiled
    }

    /// Number of dot-product layers compiled to CAM form.
    pub fn dot_layers(&self) -> usize {
        self.compiled.dot_layers()
    }

    /// Name of the source model.
    pub fn model_name(&self) -> &str {
        self.compiled.model_name()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.compiled.config
    }

    /// Runs inference on an NCHW batch, returning logits `[N, classes]`.
    ///
    /// Patch hashing inside each layer is sharded across the configured
    /// [`Parallelism`]; results are bit-identical for every setting.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (batch/model mismatch).
    pub fn infer(&self, batch: &Tensor) -> Result<Tensor> {
        self.infer_at_offset(
            batch,
            0,
            self.compiled.config.parallelism.resolve(),
            DotPath::Fast,
        )
    }

    /// Runs inference through the **frozen pre-optimization datapath**
    /// (`crate::reference`): per-pair angle/cosine evaluation over
    /// heap-allocated hashes, exactly as the engine computed before the
    /// packed-tile rewrite.
    ///
    /// Logits are guaranteed bit-identical to [`DeepCamEngine::infer`]
    /// — `tests/hotpath_reference.rs` enforces it across models, modes
    /// and noise levels. This exists as a differential oracle and as the
    /// "before" side of the `hotpath_speedup` benchmark; never use it
    /// for production inference.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepCamEngine::infer`].
    pub fn infer_reference(&self, batch: &Tensor) -> Result<Tensor> {
        self.infer_at_offset(
            batch,
            0,
            self.compiled.config.parallelism.resolve(),
            DotPath::Reference,
        )
    }

    /// Runs inference with the batch logically positioned at image index
    /// `img_offset` of a larger set, using `dot_workers` workers inside
    /// each layer. The offset only matters under `crossbar_noise > 0`,
    /// where it keeps per-patch noise a function of the *global* image
    /// index so any batching/sharding of a set reproduces the same
    /// disturbances.
    fn infer_at_offset(
        &self,
        batch: &Tensor,
        img_offset: usize,
        dot_workers: usize,
        path: DotPath,
    ) -> Result<Tensor> {
        let mut cur = batch.clone();
        for step in &self.compiled.steps {
            cur = run_step(
                step,
                &cur,
                &self.compiled.config,
                &self.tiles,
                img_offset,
                dot_workers,
                path,
            )?;
        }
        Ok(cur)
    }

    /// The single batch fan-out/reassembly primitive every batched
    /// entry point shares — [`DeepCamEngine::infer_batch`],
    /// [`DeepCamEngine::evaluate_parallel`] and the serving runtime's
    /// [`DeepCamEngine::infer_each`] are all thin wrappers over this.
    ///
    /// Each range of `ranges` is copied out as a standalone image chunk,
    /// run through the full pipeline at the noise offset `offset_of`
    /// assigns it, and reduced by `finish`; results come back in range
    /// order (a deterministic reduction regardless of which worker
    /// finishes first). The worker budget left over when there are fewer
    /// chunks than workers goes to per-layer patch hashing inside each
    /// chunk (either nesting is bit-exact — parallelism never changes
    /// values). With one chunk or one worker the chunks run on the
    /// calling thread, so `Parallelism::Serial` callers are genuinely
    /// single-threaded.
    fn fan_out<R: Send>(
        &self,
        images: &Tensor,
        ranges: &[std::ops::Range<usize>],
        workers: usize,
        offset_of: impl Fn(&std::ops::Range<usize>) -> usize + Sync,
        finish: impl Fn(&std::ops::Range<usize>, Tensor) -> R + Sync,
    ) -> Vec<Result<R>> {
        let inner_workers = (workers / ranges.len().max(1)).max(1);
        let run_one = |r: &std::ops::Range<usize>| -> Result<R> {
            let chunk = self.image_chunk(images, r.start, r.end)?;
            let logits =
                self.infer_at_offset(&chunk, offset_of(r), inner_workers, DotPath::Fast)?;
            Ok(finish(r, logits))
        };
        if workers <= 1 || ranges.len() <= 1 {
            ranges.iter().map(run_one).collect()
        } else {
            ThreadPool::global().run_indexed(ranges.len(), |ci| run_one(&ranges[ci]))
        }
    }

    /// Concatenates per-chunk logits back into one `[n, classes]` tensor
    /// (the reassembly half of [`DeepCamEngine::fan_out`]).
    fn concat_logits(n: usize, chunks: Vec<Result<Tensor>>) -> Result<Tensor> {
        let mut logits: Vec<f32> = Vec::new();
        let mut classes = 0usize;
        for chunk in chunks {
            let chunk = chunk?;
            classes = chunk.shape().dim(1);
            logits.extend_from_slice(chunk.data());
        }
        Ok(Tensor::from_vec(logits, Shape::new(&[n, classes]))?)
    }

    /// Batched inference fanned out across worker threads: the batch is
    /// split into contiguous image chunks, each chunk runs the full
    /// pipeline on one worker, and the logits are reassembled in input
    /// order (a deterministic reduction).
    ///
    /// **Bit-exactness guarantee:** for every worker count — including
    /// under `crossbar_noise` — the logits equal serial
    /// [`DeepCamEngine::infer`] exactly. The differential suite in
    /// `tests/parallel_equivalence.rs` enforces this on all zoo models.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (batch/model mismatch).
    pub fn infer_batch(&self, batch: &Tensor) -> Result<Tensor> {
        self.infer_batch_with(batch, self.compiled.config.parallelism)
    }

    /// [`DeepCamEngine::infer_batch`] with an explicit parallelism
    /// override (the compiled engine is reusable across worker counts).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (batch/model mismatch).
    pub fn infer_batch_with(&self, batch: &Tensor, parallelism: Parallelism) -> Result<Tensor> {
        let n = batch.shape().dim(0);
        let workers = parallelism.resolve();
        if workers.min(n.max(1)) <= 1 {
            return self.infer_at_offset(batch, 0, workers, DotPath::Fast);
        }
        let ranges = split_ranges(n, workers);
        let chunks = self.fan_out(batch, &ranges, workers, |r| r.start, |_, logits| logits);
        Self::concat_logits(n, chunks)
    }

    /// Inference over a batch whose images are **independent
    /// single-image submissions** — the serving runtime's micro-batches,
    /// where the batch composition is an accident of request timing.
    ///
    /// The contract: logits for image `i` are bit-identical to running
    /// that image alone through [`DeepCamEngine::infer`], for every
    /// batch composition and worker count. [`DeepCamEngine::infer_batch`]
    /// deliberately does *not* have this property under
    /// `crossbar_noise > 0`: it treats the batch as one logical set, so
    /// image `i` draws the noise of global position `i`. Here every
    /// image runs at offset 0 — its position in its own one-image
    /// submission — so dynamic micro-batching can never change a served
    /// result (`tests/serve_differential.rs` enforces this).
    ///
    /// With a clean device (`crossbar_noise == 0`) offsets seed nothing,
    /// and this delegates to the contiguous fan-out, which computes
    /// identical values with better chunking.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (batch/model mismatch).
    pub fn infer_each(&self, batch: &Tensor) -> Result<Tensor> {
        self.infer_each_with(batch, self.compiled.config.parallelism)
    }

    /// [`DeepCamEngine::infer_each`] with an explicit parallelism
    /// override.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepCamEngine::infer_each`].
    pub fn infer_each_with(&self, batch: &Tensor, parallelism: Parallelism) -> Result<Tensor> {
        if self.compiled.config.crossbar_noise == 0.0 {
            return self.infer_batch_with(batch, parallelism);
        }
        let n = batch.shape().dim(0);
        let workers = parallelism.resolve();
        if n <= 1 {
            return self.infer_at_offset(batch, 0, workers, DotPath::Fast);
        }
        // One range per image, every range at offset 0: each image's
        // noise is drawn exactly as its own single-image `infer` draws
        // it, whatever this micro-batch happens to contain. Unlike the
        // contiguous path, ranges here cannot be merged (each needs its
        // own offset), so the worker cap is honored by fanning out in
        // `workers`-sized waves instead.
        let ranges: Vec<std::ops::Range<usize>> = (0..n).map(|i| i..i + 1).collect();
        let mut chunks = Vec::with_capacity(n);
        for wave in ranges.chunks(workers.max(1)) {
            chunks.extend(self.fan_out(batch, wave, workers, |_| 0, |_, logits| logits));
        }
        Self::concat_logits(n, chunks)
    }

    /// Recalibrates every batch-norm stage's running statistics under the
    /// *approximate* datapath, using `images` as the calibration set.
    ///
    /// The float model's BN statistics describe float activations; after
    /// dot-products are replaced by hash-based approximations, the
    /// activation distribution shifts (the eq. 5 cosine has a positive
    /// bias and the Hamming estimator adds variance), and the mismatch
    /// compounds across deep networks. Recomputing BN statistics under
    /// the deployed arithmetic is the standard compute-in-memory
    /// calibration step and substantially recovers deep-model accuracy
    /// (see EXPERIMENTS.md, Fig. 5).
    ///
    /// Calibration mutates the compiled artifact's BN steps, so an
    /// engine calibrated here and then [`CompiledModel::save`]d serves
    /// the calibrated statistics after reload.
    ///
    /// # Errors
    ///
    /// Propagates inference errors.
    pub fn calibrate_bn(&mut self, images: &Tensor) -> Result<()> {
        let cfg = self.compiled.config.clone();
        let mut steps = std::mem::take(&mut self.compiled.steps);
        let result = calibrate_steps(&mut steps, images.clone(), &cfg, &self.tiles);
        self.compiled.steps = steps;
        result.map(|_| ())
    }

    /// Validates an evaluation request and returns the image count.
    fn check_eval_inputs(
        &self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> Result<usize> {
        let n = images.shape().dim(0);
        if n != labels.len() {
            return Err(CoreError::InvalidInput(format!(
                "evaluate: {} images but {} labels",
                n,
                labels.len()
            )));
        }
        if batch_size == 0 {
            return Err(CoreError::InvalidInput(
                "evaluate: batch_size must be > 0".to_string(),
            ));
        }
        Ok(n)
    }

    /// Copies images `start..end` into a standalone NCHW batch.
    fn image_chunk(&self, images: &Tensor, start: usize, end: usize) -> Result<Tensor> {
        let sample: usize = images.shape().dims()[1..].iter().product();
        let mut dims = vec![end - start];
        dims.extend_from_slice(&images.shape().dims()[1..]);
        Ok(Tensor::from_vec(
            images.data()[start * sample..end * sample].to_vec(),
            Shape::new(&dims),
        )?)
    }

    /// Counts top-1 hits of `logits` against `labels` (first index wins
    /// ties, matching `Tensor::argmax`).
    fn count_correct(logits: &Tensor, labels: &[usize]) -> usize {
        let classes = logits.shape().dim(1);
        labels
            .iter()
            .enumerate()
            .filter(|&(row, &label)| {
                let slice = &logits.data()[row * classes..(row + 1) * classes];
                // Single-pass fold carrying (index, value): no re-slicing
                // per comparison, and strict `>` keeps the first maximum
                // on ties.
                let (best, _) = slice.iter().enumerate().skip(1).fold(
                    (0usize, slice[0]),
                    |(bi, bv), (j, &v)| if v > bv { (j, v) } else { (bi, bv) },
                );
                best == label
            })
            .count()
    }

    /// Top-1 accuracy over a labelled set, processed in mini-batches.
    ///
    /// When the image count is not a multiple of `batch_size`, the final
    /// mini-batch is simply smaller — every image is always evaluated,
    /// never silently dropped (`evaluate_never_truncates_remainder` in
    /// the test suite pins this down).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the label count differs
    /// from the image count or `batch_size` is zero; propagates inference
    /// errors.
    pub fn evaluate(&self, images: &Tensor, labels: &[usize], batch_size: usize) -> Result<f32> {
        let n = self.check_eval_inputs(images, labels, batch_size)?;
        self.evaluate_batches_serially(
            images,
            labels,
            batch_size,
            n,
            self.compiled.config.parallelism.resolve(),
        )
    }

    /// Walks the mini-batches on the calling thread, using `dot_workers`
    /// workers inside each layer (inputs already validated).
    fn evaluate_batches_serially(
        &self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
        n: usize,
        dot_workers: usize,
    ) -> Result<f32> {
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let chunk = self.image_chunk(images, start, end)?;
            let logits = self.infer_at_offset(&chunk, start, dot_workers, DotPath::Fast)?;
            correct += Self::count_correct(&logits, &labels[start..end]);
            start = end;
        }
        Ok(correct as f32 / n.max(1) as f32)
    }

    /// [`DeepCamEngine::evaluate`] with mini-batches fanned out across
    /// the configured [`Parallelism`]. Per-batch hit counts are reduced
    /// in batch order, and per-image logits are bit-identical to the
    /// serial path, so the returned accuracy is **exactly** equal to
    /// [`DeepCamEngine::evaluate`] for every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepCamEngine::evaluate`].
    pub fn evaluate_parallel(
        &self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> Result<f32> {
        self.evaluate_parallel_with(images, labels, batch_size, self.compiled.config.parallelism)
    }

    /// [`DeepCamEngine::evaluate_parallel`] with an explicit parallelism
    /// override (the compiled engine is reusable across worker counts).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepCamEngine::evaluate`].
    pub fn evaluate_parallel_with(
        &self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
        parallelism: Parallelism,
    ) -> Result<f32> {
        let n = self.check_eval_inputs(images, labels, batch_size)?;
        let workers = parallelism.resolve();
        if workers <= 1 || n == 0 {
            // Honor the override on the fallback too: `workers` (not the
            // engine-config parallelism) drives in-layer patch hashing,
            // so `Parallelism::Serial` here is genuinely single-threaded.
            return self.evaluate_batches_serially(images, labels, batch_size, n, workers);
        }
        // Mini-batch ranges through the shared fan-out, reduced straight
        // to per-batch hit counts (summed in batch order below).
        let ranges: Vec<std::ops::Range<usize>> = (0..n.div_ceil(batch_size))
            .map(|bi| bi * batch_size..(bi * batch_size + batch_size).min(n))
            .collect();
        let counts = self.fan_out(
            images,
            &ranges,
            workers,
            |r| r.start,
            |r, logits| Self::count_correct(&logits, &labels[r.start..r.end]),
        );
        let mut correct = 0usize;
        for count in counts {
            correct += count?;
        }
        Ok(correct as f32 / n as f32)
    }
}

/// Executes one pipeline step on `x`.
///
/// `img_offset` is the global index of `x`'s first image within the set
/// being inferred (keeps crossbar noise batch-invariant); `dot_workers`
/// is the worker count for patch hashing inside the step. Dot steps pair
/// their stored [`CompiledTile`] with the derived [`RuntimeTile`] at the
/// same traversal index.
fn run_step(
    step: &CompiledStep,
    x: &Tensor,
    cfg: &EngineConfig,
    tiles: &[RuntimeTile],
    img_offset: usize,
    dot_workers: usize,
    path: DotPath,
) -> Result<Tensor> {
    match step {
        CompiledStep::Conv {
            cfg: conv_cfg,
            tile,
            bias,
        } => run_dot_fused(
            Some(conv_cfg),
            tile,
            bias,
            None,
            false,
            x,
            cfg,
            tiles,
            img_offset,
            dot_workers,
            path,
        ),
        CompiledStep::Linear { tile, bias } => run_dot_fused(
            None,
            tile,
            bias,
            None,
            false,
            x,
            cfg,
            tiles,
            img_offset,
            dot_workers,
            path,
        ),
        CompiledStep::Fused {
            conv,
            tile,
            bias,
            bn,
            relu,
        } => run_dot_fused(
            conv.as_ref(),
            tile,
            bias,
            bn.as_ref(),
            *relu,
            x,
            cfg,
            tiles,
            img_offset,
            dot_workers,
            path,
        ),
        CompiledStep::Bn {
            gamma,
            beta,
            mean,
            var,
        } => {
            let (n, c, h, w) = x.shape().as_nchw().ok_or_else(|| {
                CoreError::Unsupported("batch norm input must be NCHW".to_string())
            })?;
            let mut out = x.clone();
            for ni in 0..n {
                for ci in 0..c {
                    let inv = 1.0 / (var[ci] + BN_EPS).sqrt();
                    let base = (ni * c + ci) * h * w;
                    for v in &mut out.data_mut()[base..base + h * w] {
                        *v = gamma[ci] * (*v - mean[ci]) * inv + beta[ci];
                    }
                }
            }
            Ok(out)
        }
        CompiledStep::Relu => Ok(x.map(|v| v.max(0.0))),
        CompiledStep::MaxPool(p) => Ok(max_pool2d(x, p)?.0),
        CompiledStep::AvgPool(p) => Ok(avg_pool2d(x, p)?),
        CompiledStep::Flatten => {
            let n = x.shape().dim(0);
            let rest = x.len() / n.max(1);
            Ok(x.clone().reshape(Shape::new(&[n, rest]))?)
        }
        CompiledStep::Residual { body, shortcut } => {
            let mut main = x.clone();
            for s in body {
                main = run_step(s, &main, cfg, tiles, img_offset, dot_workers, path)?;
            }
            let skip = match shortcut {
                Some(sc) => {
                    let mut t = x.clone();
                    for s in sc {
                        t = run_step(s, &t, cfg, tiles, img_offset, dot_workers, path)?;
                    }
                    t
                }
                None => x.clone(),
            };
            Ok(main.add(&skip)?.map(|v| v.max(0.0)))
        }
    }
}

/// The shared dot-layer body behind the `Conv`, `Linear` and `Fused`
/// step arms: CAM dot-products, then bias — and, when the fusion pass
/// folded them in, batch-norm and ReLU — applied in the *same* single
/// pass over the output activations.
///
/// Bit-exactness contract: with `bn = None, relu = false` this is the
/// historical Conv/Linear arm verbatim (same expressions, same
/// per-element order). With folded peripherals, each output element
/// evaluates `bias → gamma·(v−mean)·inv + beta → max(v, 0)` — exactly
/// the element-wise chain the unfused `Bn`/`Relu` steps apply in later
/// passes, element order preserved — so fused logits equal unfused
/// logits bitwise (`tests/passes_invariance.rs` pins this across the
/// zoo).
#[allow(clippy::too_many_arguments)]
fn run_dot_fused(
    conv: Option<&Conv2dConfig>,
    tile: &CompiledTile,
    bias: &[f32],
    bn: Option<&BnParams>,
    relu: bool,
    x: &Tensor,
    cfg: &EngineConfig,
    tiles: &[RuntimeTile],
    img_offset: usize,
    dot_workers: usize,
    path: DotPath,
) -> Result<Tensor> {
    match conv {
        Some(conv_cfg) => {
            let (n_batch, _c, h, w) = x
                .shape()
                .as_nchw()
                .ok_or_else(|| CoreError::Unsupported("conv input must be NCHW".to_string()))?;
            let (oh, ow) = conv_cfg.output_hw(h, w);
            // Patch extraction shards over the same worker budget as
            // the hashing below (bit-identical at any count).
            let patches = im2col_sharded(x, conv_cfg, dot_workers)?; // [N*P, n]
                                                                     // Every image contributes OH*OW patch rows, so the global
                                                                     // patch-row offset of this chunk is img_offset * P.
            let row_offset = img_offset * (oh * ow);
            let rt = &tiles[tile.layer_idx];
            let out2d = dot_rows(&patches, tile, rt, cfg, row_offset, dot_workers, path)?;
            // `1/√(var+ε)` is hoisted per channel — the same value the
            // standalone BN step computes once per (image, channel).
            let inv: Option<Vec<f32>> =
                bn.map(|p| p.var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect());
            // Permute [N*P, M] -> [N, M, OH, OW], adding bias and any
            // folded peripherals in the same pass.
            let p = oh * ow;
            let m = tile.kernels();
            let mut out = vec![0.0f32; n_batch * m * p];
            for ni in 0..n_batch {
                for pi in 0..p {
                    let row = (ni * p + pi) * m;
                    for (mi, &b) in bias.iter().enumerate() {
                        let mut v = out2d[row + mi] + b;
                        if let (Some(p), Some(inv)) = (bn, inv.as_deref()) {
                            v = p.gamma[mi] * (v - p.mean[mi]) * inv[mi] + p.beta[mi];
                        }
                        if relu {
                            v = v.max(0.0);
                        }
                        out[(ni * m + mi) * p + pi] = v;
                    }
                }
            }
            Ok(Tensor::from_vec(out, Shape::new(&[n_batch, m, oh, ow]))?)
        }
        None => {
            // One patch row per image: the row offset is img_offset.
            // (Linear-sourced steps never fold BN — see the fusion pass.)
            debug_assert!(bn.is_none(), "BN folds only into conv-sourced steps");
            let rt = &tiles[tile.layer_idx];
            let out2d = dot_rows(x, tile, rt, cfg, img_offset, dot_workers, path)?;
            let n_batch = x.shape().dim(0);
            let m = tile.kernels();
            let mut out = out2d;
            for ni in 0..n_batch {
                for (mi, &b) in bias.iter().enumerate() {
                    let v = &mut out[ni * m + mi];
                    *v += b;
                    if relu {
                        *v = v.max(0.0);
                    }
                }
            }
            Ok(Tensor::from_vec(out, Shape::new(&[n_batch, m]))?)
        }
    }
}

/// Per-channel mean and biased variance of an NCHW tensor — the batch
/// statistics BN calibration stores (identical arithmetic for the
/// standalone and fused calibration arms).
fn channel_stats(x: &Tensor) -> Result<(Vec<f32>, Vec<f32>)> {
    let (n, c, h, w) = x
        .shape()
        .as_nchw()
        .ok_or_else(|| CoreError::Unsupported("batch norm input must be NCHW".to_string()))?;
    let count = (n * h * w).max(1) as f32;
    let mut new_mean = vec![0.0f32; c];
    let mut new_var = vec![0.0f32; c];
    for ni in 0..n {
        for (ci, m) in new_mean.iter_mut().enumerate() {
            let base = (ni * c + ci) * h * w;
            for &v in &x.data()[base..base + h * w] {
                *m += v;
            }
        }
    }
    for m in &mut new_mean {
        *m /= count;
    }
    for ni in 0..n {
        for (ci, nv) in new_var.iter_mut().enumerate() {
            let base = (ni * c + ci) * h * w;
            for &v in &x.data()[base..base + h * w] {
                let d = v - new_mean[ci];
                *nv += d * d;
            }
        }
    }
    for v in &mut new_var {
        *v /= count;
    }
    Ok((new_mean, new_var))
}

/// Applies batch-norm in place over an NCHW tensor — the standalone BN
/// step's expression and element order, used by the fused calibration
/// arm after it refreshed the statistics.
fn apply_bn_nchw(x: &mut Tensor, p: &BnParams) -> Result<()> {
    let (n, c, h, w) = x
        .shape()
        .as_nchw()
        .ok_or_else(|| CoreError::Unsupported("batch norm input must be NCHW".to_string()))?;
    for ni in 0..n {
        for ci in 0..c {
            let inv = 1.0 / (p.var[ci] + BN_EPS).sqrt();
            let base = (ni * c + ci) * h * w;
            for v in &mut x.data_mut()[base..base + h * w] {
                *v = p.gamma[ci] * (*v - p.mean[ci]) * inv + p.beta[ci];
            }
        }
    }
    Ok(())
}

/// Walks the pipeline forwarding `x`, replacing every batch-norm stage's
/// statistics with the batch statistics of its *approximate-datapath*
/// input.
fn calibrate_steps(
    steps: &mut [CompiledStep],
    x: Tensor,
    cfg: &EngineConfig,
    tiles: &[RuntimeTile],
) -> Result<Tensor> {
    let dot_workers = cfg.parallelism.resolve();
    let mut cur = x;
    for step in steps.iter_mut() {
        cur = match step {
            CompiledStep::Bn { mean, var, .. } => {
                let (new_mean, new_var) = channel_stats(&cur)?;
                *mean = new_mean;
                *var = new_var;
                run_step(step, &cur, cfg, tiles, 0, dot_workers, DotPath::Fast)?
            }
            CompiledStep::Fused {
                conv,
                tile,
                bias,
                bn,
                relu,
            } if bn.is_some() => {
                // Run the dot layer with the folded peripherals
                // suppressed: the pre-BN activations are what the
                // statistics must be computed over (identically to the
                // unfused Conv-then-Bn calibration walk).
                let pre = run_dot_fused(
                    conv.as_ref(),
                    tile,
                    bias,
                    None,
                    false,
                    &cur,
                    cfg,
                    tiles,
                    0,
                    dot_workers,
                    DotPath::Fast,
                )?;
                let (new_mean, new_var) = channel_stats(&pre)?;
                let params = bn.as_mut().expect("guarded Some");
                params.mean = new_mean;
                params.var = new_var;
                let mut out = pre;
                apply_bn_nchw(&mut out, params)?;
                if *relu {
                    out = out.map(|v| v.max(0.0));
                }
                out
            }
            CompiledStep::Residual { body, shortcut } => {
                let main = calibrate_steps(body, cur.clone(), cfg, tiles)?;
                let skip = match shortcut {
                    Some(sc) => calibrate_steps(sc, cur.clone(), cfg, tiles)?,
                    None => cur.clone(),
                };
                main.add(&skip)?.map(|v| v.max(0.0))
            }
            other => run_step(other, &cur, cfg, tiles, 0, dot_workers, DotPath::Fast)?,
        };
    }
    Ok(cur)
}

/// The heart of the engine: approximate dot-products of every row of
/// `rows [R, n]` against every stored kernel context, via hashing and
/// Hamming distance. Returns a flat `[R * M]` buffer.
///
/// `row_offset` is the global patch-row index of row 0 (used only to
/// seed the per-patch crossbar noise, making disturbances a pure
/// function of the patch's position in the full set); `workers` shards
/// the row range across the pool. Every output element is computed by
/// the identical scalar pipeline regardless of sharding, so results are
/// bit-identical for every worker count — and the `Reference` path is
/// bit-identical to the `Fast` one (`tests/hotpath_reference.rs`).
#[allow(clippy::too_many_arguments)]
// analyze: allow(determinism, "opt-in profiler timestamps only; the computed values never depend on the clock")
fn dot_rows(
    rows: &Tensor,
    ct: &CompiledTile,
    rt: &RuntimeTile,
    engine_cfg: &EngineConfig,
    row_offset: usize,
    workers: usize,
    path: DotPath,
) -> Result<Vec<f32>> {
    let r = rows.shape().dim(0);
    let n = rows.shape().dim(1);
    let m = ct.kernels();
    let mut out = vec![0.0f32; r * m];
    let row_data = rows.data();
    let workers = workers.clamp(1, r.max(1));
    let timer = if crate::profile::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let range = |row_start: usize, chunk: &mut [f32]| match path {
        DotPath::Fast => dot_rows_range(
            row_data, n, ct, rt, engine_cfg, row_offset, row_start, chunk,
        ),
        DotPath::Reference => crate::reference::dot_rows_range(
            row_data,
            n,
            &rt.proj,
            rt.weights(ct),
            ct.k,
            ct.layer_idx,
            engine_cfg,
            row_offset,
            row_start,
            chunk,
        ),
    };
    if workers <= 1 {
        range(0, &mut out);
    } else {
        let chunk_rows = r.div_ceil(workers);
        ThreadPool::global().run_chunks_mut(&mut out, chunk_rows * m, |ci, chunk| {
            range(ci * chunk_rows, chunk);
        });
    }
    if let Some(start) = timer {
        crate::profile::record(crate::profile::DotSample {
            layer_idx: ct.layer_idx,
            rows: r,
            m,
            k: ct.k,
            seconds: start.elapsed().as_secs_f64(),
        });
    }
    Ok(out)
}

/// Hashes patch rows `row_start..row_start + out.len() / M` and fills
/// their output slice. This single function serves both the serial and
/// every sharded configuration of [`dot_rows`].
///
/// The loop is allocation-free per patch: the chunk is projected
/// straight out of `row_data` into one per-worker scratch buffer
/// (`matmul_into` — same kernel, same per-element accumulation order as
/// the historical `Tensor::matmul` path), noise is applied in place,
/// signs are packed into a reusable word buffer, and one XOR+popcount
/// pass over the packed weight tile yields every Hamming distance. The
/// final `a_norm * w_norm * cos_lut[hd]` is the identical expression
/// (and multiplication order) the per-pair path evaluated, with the
/// angle/cosine collapsed into the k+1-entry LUT computed at compile
/// time.
#[allow(clippy::too_many_arguments)]
// analyze: alloc-free
fn dot_rows_range(
    row_data: &[f32],
    n: usize,
    ct: &CompiledTile,
    rt: &RuntimeTile,
    engine_cfg: &EngineConfig,
    row_offset: usize,
    row_start: usize,
    out: &mut [f32],
) {
    let m = ct.kernels();
    let k = ct.k;
    let rows_here = out.len() / m;
    let noise = engine_cfg.crossbar_noise;
    let norm_mode = engine_cfg.norm;
    let seed = engine_cfg.seed;
    // Patch rows are processed in sub-blocks sized so the projected
    // activations stay cache-resident between the GEMM that produces
    // them and the sign/Hamming stage that consumes them (64 rows × k
    // floats ≈ 64 KB at k = 256, vs streaming a whole layer's
    // projection through memory).
    const SUB_ROWS: usize = 64;
    // Per-worker scratch, allocated once per chunk (not per patch).
    let mut projected = vec![0.0f32; SUB_ROWS.min(rows_here.max(1)) * k];
    let mut query = vec![0u64; ct.packed.words_per_row()];
    let mut dists = vec![0u32; m];
    let mut sub_start = 0usize;
    while sub_start < rows_here {
        let sub_rows = SUB_ROWS.min(rows_here - sub_start);
        // Batched projection of this sub-block: [sub_rows, n] x [n, k],
        // read directly from the shared patch buffer through the
        // register-tiled dense kernel (projection matrices are finite by
        // construction, so it is bit-identical to the zero-skip kernel —
        // see its docs). Each projected element is a fixed-order dot
        // over n, so block boundaries never change its value.
        let abs0 = row_start + sub_start;
        matmul_dense_into(
            &row_data[abs0 * n..(abs0 + sub_rows) * n],
            sub_rows,
            n,
            rt.proj.data(),
            k,
            &mut projected[..sub_rows * k],
        );
        for sub_local in 0..sub_rows {
            let local = sub_start + sub_local;
            let patch = &row_data[(abs0 + sub_local) * n..(abs0 + sub_local + 1) * n];
            let norm = patch.iter().map(|&v| v * v).sum::<f32>().sqrt();
            let pre = &mut projected[sub_local * k..(sub_local + 1) * k];
            if noise > 0.0 {
                // Per-patch deterministic RNG keyed by the *global*
                // patch index: disturbances are reproducible across
                // runs, thread counts and batch splits.
                let global_row = (row_offset + row_start + local) as u64;
                let mut rng = seeded_rng(
                    seed ^ ((ct.layer_idx as u64) << 40)
                        ^ global_row.wrapping_mul(0x9E3779B97F4A7C15),
                );
                for v in pre.iter_mut() {
                    *v += noise * norm * standard_normal(&mut rng) as f32;
                }
            }
            pack_signs_into(pre, &mut query);
            let a_norm = match norm_mode {
                NormMode::Minifloat8 => Minifloat8::quantize(norm),
                NormMode::Fp32 => norm,
            };
            ct.packed.hamming_into(&query, &mut dists);
            let out_row = &mut out[local * m..(local + 1) * m];
            for ((o, &hd), &w_norm) in out_row.iter_mut().zip(dists.iter()).zip(rt.w_norms.iter()) {
                *o = a_norm * w_norm * rt.cos_lut[hd as usize];
            }
        }
        sub_start += sub_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::scaled::{scaled_lenet5, scaled_resnet18};
    use deepcam_tensor::rng::seeded_rng;
    use deepcam_tensor::Layer;

    fn tiny_batch(n: usize) -> Tensor {
        let mut rng = seeded_rng(5);
        deepcam_tensor::init::normal(&mut rng, Shape::new(&[n, 1, 28, 28]), 0.0, 1.0)
    }

    #[test]
    fn compile_counts_layers() {
        let mut rng = seeded_rng(0);
        let model = scaled_lenet5(&mut rng, 10);
        let engine = DeepCamEngine::compile(&model, EngineConfig::default()).unwrap();
        assert_eq!(engine.dot_layers(), 5);
        assert_eq!(engine.model_name(), "LeNet5");
    }

    #[test]
    fn infer_shapes() {
        let mut rng = seeded_rng(1);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let logits = engine.infer(&tiny_batch(3)).unwrap();
        assert_eq!(logits.shape(), &Shape::new(&[3, 10]));
        assert!(logits.all_finite());
    }

    #[test]
    fn tracks_float_model_outputs() {
        // At k=1024 with exact cosine + fp32 norms, the engine's logits
        // should correlate strongly with the float model's.
        let mut rng = seeded_rng(2);
        let mut model = scaled_lenet5(&mut rng, 10);
        let x = tiny_batch(4);
        let float_logits = model.forward(&x, false).unwrap();
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(1024),
            cosine: CosineMode::Exact,
            norm: NormMode::Fp32,
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let dc_logits = engine.infer(&x).unwrap();
        // Pearson correlation across all logits.
        let a = float_logits.data();
        let b = dc_logits.data();
        let ma = a.iter().sum::<f32>() / a.len() as f32;
        let mb = b.iter().sum::<f32>() / b.len() as f32;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (a[i] - ma) * (b[i] - mb);
            va += (a[i] - ma).powi(2);
            vb += (b[i] - mb).powi(2);
        }
        let corr = cov / (va.sqrt() * vb.sqrt()).max(1e-9);
        assert!(corr > 0.5, "correlation {corr}");
    }

    #[test]
    fn plan_must_cover_model() {
        let mut rng = seeded_rng(3);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![256; 3]),
            ..EngineConfig::default()
        };
        assert!(matches!(
            DeepCamEngine::compile(&model, cfg),
            Err(CoreError::InvalidPlan(_))
        ));
    }

    #[test]
    fn plan_errors_name_the_model_and_layer() {
        let mut rng = seeded_rng(30);
        let model = scaled_lenet5(&mut rng, 10);
        // Wrong layer count: the message names the model.
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![256; 3]),
            ..EngineConfig::default()
        };
        match DeepCamEngine::compile(&model, cfg).map(|_| ()) {
            Err(CoreError::InvalidPlan(msg)) => {
                assert!(msg.contains("LeNet5"), "{msg}");
                assert!(msg.contains("5 dot layers"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
        // Unsupported length: the message names the offending layer.
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![256, 256, 300, 256, 256]),
            ..EngineConfig::default()
        };
        match DeepCamEngine::compile(&model, cfg).map(|_| ()) {
            Err(CoreError::InvalidPlan(msg)) => {
                assert!(msg.contains("dot layer 2"), "{msg}");
                assert!(msg.contains("'fc1'"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn residual_model_compiles_and_runs() {
        let mut rng = seeded_rng(4);
        let model = scaled_resnet18(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        assert_eq!(engine.dot_layers(), 21);
        let mut rng2 = seeded_rng(6);
        let x = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[2, 3, 32, 32]), 0.0, 1.0);
        let logits = engine.infer(&x).unwrap();
        assert_eq!(logits.shape(), &Shape::new(&[2, 10]));
        assert!(logits.all_finite());
    }

    #[test]
    fn noise_changes_outputs_deterministically() {
        let mut rng = seeded_rng(7);
        let model = scaled_lenet5(&mut rng, 10);
        let x = tiny_batch(2);
        let mk = |noise: f32| {
            let cfg = EngineConfig {
                plan: HashPlan::Uniform(256),
                crossbar_noise: noise,
                ..EngineConfig::default()
            };
            DeepCamEngine::compile(&model, cfg)
                .unwrap()
                .infer(&x)
                .unwrap()
        };
        let clean = mk(0.0);
        let noisy1 = mk(0.5);
        let noisy2 = mk(0.5);
        assert_ne!(clean.data(), noisy1.data());
        assert_eq!(noisy1.data(), noisy2.data()); // deterministic noise
    }

    #[test]
    fn calibrate_bn_changes_stats_and_keeps_shapes() {
        let mut rng = seeded_rng(9);
        let model = deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let mut engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let mut rng2 = seeded_rng(10);
        let calib = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[4, 3, 32, 32]), 0.0, 1.0);
        let before = engine.infer(&calib).unwrap();
        engine.calibrate_bn(&calib).unwrap();
        let after = engine.infer(&calib).unwrap();
        assert_eq!(before.shape(), after.shape());
        assert!(after.all_finite());
        // Calibration must actually change the BN statistics (and hence
        // the logits) for a model whose float stats are untrained.
        assert_ne!(before.data(), after.data());
    }

    #[test]
    fn calibration_persists_through_the_artifact() {
        // calibrate → save → load must serve the calibrated statistics.
        let mut rng = seeded_rng(40);
        let model = deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let mut engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let mut rng2 = seeded_rng(41);
        let calib = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[3, 3, 32, 32]), 0.0, 1.0);
        engine.calibrate_bn(&calib).unwrap();
        let calibrated = engine.infer(&calib).unwrap();
        let reloaded = DeepCamEngine::from_compiled(
            CompiledModel::from_bytes(&engine.compiled().to_bytes()).unwrap(),
        )
        .unwrap();
        assert_eq!(calibrated.data(), reloaded.infer(&calib).unwrap().data());
    }

    #[test]
    fn cosine_luts_are_shared_per_hash_length() {
        // Satellite: one cosine-LUT allocation per distinct hash
        // length. A uniform plan must yield a single shared Arc across
        // every runtime tile; distinct lengths must not share.
        let mut rng = seeded_rng(50);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let first = &engine.tiles[0].cos_lut;
        for rt in &engine.tiles[1..] {
            assert!(std::sync::Arc::ptr_eq(first, &rt.cos_lut));
        }
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(vec![256, 512, 256, 512, 256]),
            ..EngineConfig::default()
        };
        let model2 = scaled_lenet5(&mut seeded_rng(50), 10);
        let engine = DeepCamEngine::compile(&model2, cfg).unwrap();
        assert!(std::sync::Arc::ptr_eq(
            &engine.tiles[0].cos_lut,
            &engine.tiles[2].cos_lut
        ));
        assert!(std::sync::Arc::ptr_eq(
            &engine.tiles[1].cos_lut,
            &engine.tiles[3].cos_lut
        ));
        assert!(!std::sync::Arc::ptr_eq(
            &engine.tiles[0].cos_lut,
            &engine.tiles[1].cos_lut
        ));
        // Sharing must not change the table contents.
        assert_eq!(engine.tiles[1].cos_lut.len(), 512 + 1);
    }

    #[test]
    fn fused_steps_are_bitwise_identical_to_unfused() {
        // The fusion pass's whole contract: same logits, to the bit,
        // with crossbar noise exercising the noisy datapath too.
        let mut rng = seeded_rng(51);
        let model = deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            crossbar_noise: 0.3,
            ..EngineConfig::default()
        };
        let compiled = CompiledModel::compile(&model, cfg).unwrap();
        let mut fused = compiled.clone();
        let outcome = crate::passes::fuse::run(&mut fused);
        assert!(outcome.changed);
        let plain = DeepCamEngine::from_compiled(compiled).unwrap();
        let fused = DeepCamEngine::from_compiled(fused).unwrap();
        let mut rng2 = seeded_rng(52);
        let x = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[3, 3, 32, 32]), 0.0, 1.0);
        assert_eq!(
            plain.infer(&x).unwrap().data(),
            fused.infer(&x).unwrap().data()
        );
        // And through the reference (non-SIMD) dot path.
        assert_eq!(
            plain.infer_reference(&x).unwrap().data(),
            fused.infer_reference(&x).unwrap().data()
        );
    }

    #[test]
    fn fused_calibration_matches_unfused() {
        // Calibrating a fused model must land on the same statistics —
        // and hence the same logits — as calibrating before fusion.
        let mut rng = seeded_rng(53);
        let model = deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let compiled = CompiledModel::compile(&model, cfg).unwrap();
        let mut fused = compiled.clone();
        crate::passes::fuse::run(&mut fused);
        let mut plain = DeepCamEngine::from_compiled(compiled).unwrap();
        let mut fused = DeepCamEngine::from_compiled(fused).unwrap();
        let mut rng2 = seeded_rng(54);
        let calib = deepcam_tensor::init::normal(&mut rng2, Shape::new(&[4, 3, 32, 32]), 0.0, 1.0);
        plain.calibrate_bn(&calib).unwrap();
        fused.calibrate_bn(&calib).unwrap();
        let x = deepcam_tensor::init::normal(
            &mut seeded_rng(55),
            Shape::new(&[2, 3, 32, 32]),
            0.0,
            1.0,
        );
        assert_eq!(
            plain.infer(&x).unwrap().data(),
            fused.infer(&x).unwrap().data()
        );
    }

    #[test]
    fn count_correct_tie_breaks_to_first_max() {
        // Two tied maxima: the *first* index wins, matching
        // `Tensor::argmax`. Labels hitting the first tie count as
        // correct; labels hitting the second do not.
        let logits = Tensor::from_vec(
            vec![
                1.0, 5.0, 5.0, 2.0, // argmax = 1 (not 2)
                7.0, 7.0, 7.0, 7.0, // argmax = 0
                0.0, -1.0, 3.0, 3.0, // argmax = 2 (not 3)
            ],
            Shape::new(&[3, 4]),
        )
        .unwrap();
        assert_eq!(DeepCamEngine::count_correct(&logits, &[1, 0, 2]), 3);
        assert_eq!(DeepCamEngine::count_correct(&logits, &[2, 1, 3]), 0);
        // Mixed: only the middle row's label is the winning index.
        assert_eq!(DeepCamEngine::count_correct(&logits, &[2, 0, 3]), 1);
    }

    #[test]
    fn count_correct_matches_tensor_argmax_convention() {
        let mut rng = seeded_rng(77);
        let logits = deepcam_tensor::init::normal(&mut rng, Shape::new(&[8, 5]), 0.0, 1.0);
        for row in 0..8 {
            let expected = Tensor::from_slice(&logits.data()[row * 5..(row + 1) * 5])
                .argmax()
                .unwrap()
                .0;
            let labels: Vec<usize> = (0..8).map(|_| expected).collect();
            // Row `row` must be counted under its argmax label.
            let hits = DeepCamEngine::count_correct(&logits, &labels);
            assert!(hits >= 1, "row {row}");
        }
    }

    #[test]
    fn infer_reference_matches_fast_path_bitwise() {
        let mut rng = seeded_rng(21);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(2);
        let fast = engine.infer(&x).unwrap();
        let reference = engine.infer_reference(&x).unwrap();
        assert_eq!(fast.data(), reference.data());
    }

    #[test]
    fn evaluate_bounds() {
        let mut rng = seeded_rng(8);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(6);
        let labels = vec![0usize; 6];
        let acc = engine.evaluate(&x, &labels, 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn evaluate_rejects_inconsistent_inputs() {
        let mut rng = seeded_rng(12);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(4);
        // Label count mismatch is a typed error, not a panic.
        assert!(matches!(
            engine.evaluate(&x, &[0usize; 3], 2),
            Err(CoreError::InvalidInput(_))
        ));
        // Zero batch size too.
        assert!(matches!(
            engine.evaluate(&x, &[0usize; 4], 0),
            Err(CoreError::InvalidInput(_))
        ));
        // And the parallel path applies the same validation.
        assert!(matches!(
            engine.evaluate_parallel(&x, &[0usize; 3], 2),
            Err(CoreError::InvalidInput(_))
        ));
    }

    #[test]
    fn evaluate_never_truncates_remainder() {
        // 6 images with batch_size 4 leaves a remainder mini-batch of 2;
        // every image must still be evaluated. Comparing against
        // batch_size 1/6 (where no remainder exists) pins this down:
        // accuracy is a count over all n images, so any silent drop of
        // the remainder would shift the result.
        let mut rng = seeded_rng(14);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(6);
        let logits = engine.infer(&x).unwrap();
        let labels: Vec<usize> = (0..6)
            .map(|i| {
                let row = &logits.data()[i * 10..(i + 1) * 10];
                // Label half the images with their argmax, half wrong, so
                // the expected accuracy is exactly 3/6 only when all six
                // are counted.
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                if i % 2 == 0 {
                    best
                } else {
                    (best + 1) % 10
                }
            })
            .collect();
        for batch_size in [1usize, 4, 5, 6, 100] {
            let acc = engine.evaluate(&x, &labels, batch_size).unwrap();
            assert_eq!(acc, 0.5, "batch_size {batch_size}");
            let par = engine
                .evaluate_parallel_with(&x, &labels, batch_size, Parallelism::Fixed(3))
                .unwrap();
            assert_eq!(par, 0.5, "parallel batch_size {batch_size}");
        }
    }

    #[test]
    fn infer_batch_matches_infer_bitwise() {
        let mut rng = seeded_rng(15);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(5); // odd count: uneven worker chunks
        let serial = engine.infer(&x).unwrap();
        for workers in [1usize, 2, 3, 8] {
            let par = engine
                .infer_batch_with(&x, Parallelism::Fixed(workers))
                .unwrap();
            assert_eq!(serial.data(), par.data(), "workers {workers}");
            assert_eq!(serial.shape(), par.shape());
        }
    }

    #[test]
    fn infer_each_matches_per_image_infer_bitwise() {
        // The serving-runtime contract: every image of an `infer_each`
        // batch is bit-identical to its own single-image `infer` call —
        // including under crossbar noise, where `infer_batch` would
        // instead draw position-dependent noise.
        let mut rng = seeded_rng(23);
        let model = scaled_lenet5(&mut rng, 10);
        for noise in [0.0f32, 0.5] {
            let cfg = EngineConfig {
                plan: HashPlan::Uniform(256),
                crossbar_noise: noise,
                ..EngineConfig::default()
            };
            let engine = DeepCamEngine::compile(&model, cfg).unwrap();
            let x = tiny_batch(5);
            let mut serial: Vec<f32> = Vec::new();
            for i in 0..5 {
                let one = engine.image_chunk(&x, i, i + 1).unwrap();
                serial.extend_from_slice(engine.infer(&one).unwrap().data());
            }
            for workers in [1usize, 2, 4] {
                let coalesced = engine
                    .infer_each_with(&x, Parallelism::Fixed(workers))
                    .unwrap();
                assert_eq!(
                    serial.as_slice(),
                    coalesced.data(),
                    "noise {noise}, workers {workers}"
                );
            }
        }
    }

    #[test]
    fn noisy_infer_batch_is_batch_invariant() {
        // Crossbar noise is keyed by the global patch index, so image
        // sharding must reproduce the serial disturbances exactly.
        let mut rng = seeded_rng(16);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            crossbar_noise: 0.5,
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).unwrap();
        let x = tiny_batch(4);
        let serial = engine.infer(&x).unwrap();
        let par = engine.infer_batch_with(&x, Parallelism::Fixed(4)).unwrap();
        assert_eq!(serial.data(), par.data());
    }
}
