//! Performance reports for the DeepCAM accelerator.

use serde::{Deserialize, Serialize};

/// Energy broken down by architectural component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// CAM search operations.
    pub cam_search: f64,
    /// CAM row writes (tile loads).
    pub cam_write: f64,
    /// Post-processing (cosine, norm multiply, peripheral ops).
    pub postproc: f64,
    /// Online activation context generation (norm unit + crossbar hash).
    pub ctxgen: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.cam_search + self.cam_write + self.postproc + self.ctxgen
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.cam_search += other.cam_search;
        self.cam_write += other.cam_write;
        self.postproc += other.postproc;
        self.ctxgen += other.ctxgen;
    }
}

/// Per-layer performance of the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Layer name.
    pub name: String,
    /// Hash length used for this layer.
    pub hash_len: usize,
    /// CAM tile loads.
    pub tile_loads: u64,
    /// CAM search operations.
    pub searches: u64,
    /// Total cycles attributed to the layer.
    pub cycles: u64,
    /// CAM row utilization in `[0, 1]`.
    pub utilization: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Whole-model performance report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration label, e.g. `"DeepCAM-AS rows=64 variable"`.
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Per-dot-layer breakdown.
    pub layers: Vec<LayerPerf>,
    /// Total inference cycles.
    pub total_cycles: u64,
    /// Total dynamic energy in joules.
    pub total_energy_j: f64,
    /// Total energy breakdown.
    pub energy: EnergyBreakdown,
}

impl PerfReport {
    /// Builds a report from per-layer results.
    pub fn from_layers(
        config: impl Into<String>,
        workload: impl Into<String>,
        layers: Vec<LayerPerf>,
    ) -> Self {
        let total_cycles = layers.iter().map(|l| l.cycles).sum();
        let mut energy = EnergyBreakdown::default();
        for l in &layers {
            energy.accumulate(&l.energy);
        }
        PerfReport {
            config: config.into(),
            workload: workload.into(),
            layers,
            total_cycles,
            total_energy_j: energy.total(),
            energy,
        }
    }

    /// Cycle-weighted mean CAM utilization (the Fig. 9 metric).
    pub fn mean_utilization(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Energy in microjoules (Table II unit).
    pub fn energy_uj(&self) -> f64 {
        self.total_energy_j * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, util: f64, search: f64) -> LayerPerf {
        LayerPerf {
            name: "l".into(),
            hash_len: 256,
            tile_loads: 1,
            searches: 10,
            cycles,
            utilization: util,
            energy: EnergyBreakdown {
                cam_search: search,
                cam_write: 0.0,
                postproc: 0.0,
                ctxgen: 0.0,
            },
        }
    }

    #[test]
    fn totals() {
        let r = PerfReport::from_layers("c", "w", vec![layer(10, 1.0, 1e-9), layer(20, 0.5, 2e-9)]);
        assert_eq!(r.total_cycles, 30);
        assert!((r.total_energy_j - 3e-9).abs() < 1e-15);
        assert!((r.mean_utilization() - (10.0 + 10.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut a = EnergyBreakdown {
            cam_search: 1.0,
            cam_write: 2.0,
            postproc: 3.0,
            ctxgen: 4.0,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total(), 20.0);
    }

    #[test]
    fn empty_report() {
        let r = PerfReport::from_layers("c", "w", vec![]);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.mean_utilization(), 0.0);
    }
}
