//! The pass pipeline's one contract, checked exhaustively: every pass —
//! and every *ordered subset* of the default pass list — leaves the
//! logits bitwise identical to the unpassed model, across random zoo
//! models, per-layer hash plans, crossbar noise levels and seeds.
//!
//! Fusion rewrites the step program; mapping attaches scheduling
//! metadata. Neither may perturb a single output bit, in any order of
//! application.

use deepcam_core::passes::{self, Pass};
use deepcam_core::{CompiledModel, DeepCamEngine, EngineConfig, HashPlan, MappingConfig};
use deepcam_models::Cnn;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Shape, Tensor};
use proptest::prelude::*;

fn model_for(sel: usize) -> Cnn {
    let mut rng = seeded_rng(31 + sel as u64);
    match sel {
        0 => deepcam_models::scaled::scaled_lenet5(&mut rng, 10),
        1 => deepcam_models::scaled::scaled_vgg11(&mut rng, 4, 10),
        _ => deepcam_models::scaled::scaled_resnet18(&mut rng, 4, 10),
    }
}

fn batch_for(model: &Cnn, n: usize, seed: u64) -> Tensor {
    let (c, h, w) = model.input.expect("scaled models declare their input");
    let mut rng = seeded_rng(seed);
    init::normal(&mut rng, Shape::new(&[n, c, h, w]), 0.0, 1.0)
}

/// Every ordered subset of the two-pass default list (the empty subset
/// is the baseline itself and serves as a sanity anchor).
fn pass_subsets() -> Vec<Vec<Pass>> {
    let fuse = Pass::FuseSteps;
    let map = Pass::MapArrays(MappingConfig::default());
    vec![
        vec![],
        vec![fuse.clone()],
        vec![map.clone()],
        vec![fuse.clone(), map.clone()],
        vec![map, fuse],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_pass_subset_is_output_invariant(
        model_sel in 0usize..3,
        width_bits in any::<u64>(),
        noise_steps in 0u32..3,
        seed in 0u64..1000,
    ) {
        let model = model_for(model_sel);
        let layers = model.dot_layer_count();
        // Derive a random-but-reproducible per-layer plan from the
        // width bits (2 bits of selector per layer).
        let widths: Vec<usize> = (0..layers)
            .map(|i| [256usize, 512, 768, 1024][((width_bits >> (2 * (i % 32))) & 3) as usize])
            .collect();
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(widths),
            crossbar_noise: noise_steps as f32 * 0.25,
            seed,
            ..EngineConfig::default()
        };
        let compiled = CompiledModel::compile(&model, cfg).expect("compiles");
        let x = batch_for(&model, 2, seed ^ 0x55AA);
        let baseline = DeepCamEngine::from_compiled(compiled.clone())
            .expect("builds runtime")
            .infer(&x)
            .expect("baseline inference");
        for subset in pass_subsets() {
            let names: Vec<&str> = subset.iter().map(|p| p.name()).collect();
            let mut passed = compiled.clone();
            passes::apply(&mut passed, &subset).expect("passes apply");
            let out = DeepCamEngine::from_compiled(passed)
                .expect("builds passed runtime")
                .infer(&x)
                .expect("passed inference");
            prop_assert_eq!(
                baseline.data(),
                out.data(),
                "pass subset {:?} changed the logits",
                names
            );
        }
    }
}
