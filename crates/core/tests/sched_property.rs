//! Property-based tests of the scheduler over randomized layer shapes.

use deepcam_core::sched::{CamScheduler, CycleModel};
use deepcam_core::{Dataflow, HashPlan};
use deepcam_models::DotLayer;
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = DotLayer> {
    (1usize..2000, 1usize..600, 1usize..5000).prop_map(|(p, m, n)| DotLayer {
        name: "rand".into(),
        p,
        m,
        n,
        input_elems: n.max(p), // plausible unique input count
    })
}

fn k_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(256usize), Just(512), Just(768), Just(1024)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn search_count_formula(layer in layer_strategy(), k in k_strategy(), rows_sel in 0usize..4) {
        let rows = [64usize, 128, 256, 512][rows_sel];
        for dataflow in Dataflow::both() {
            let sched = CamScheduler::new(rows, dataflow).unwrap();
            let perf = sched.layer_perf(&layer, k, false).unwrap();
            let (stored, streamed) = match dataflow {
                Dataflow::WeightStationary => (layer.m, layer.p),
                Dataflow::ActivationStationary => (layer.p, layer.m),
            };
            prop_assert_eq!(perf.searches, (stored.div_ceil(rows).max(1) * streamed) as u64);
            prop_assert!(perf.utilization > 0.0 && perf.utilization <= 1.0);
            prop_assert!(perf.cycles > 0);
        }
    }

    #[test]
    fn energy_components_positive_and_monotone_in_k(layer in layer_strategy()) {
        let sched = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let mut prev_total = 0.0f64;
        for k in [256usize, 512, 768, 1024] {
            let perf = sched.layer_perf(&layer, k, false).unwrap();
            let e = &perf.energy;
            prop_assert!(e.cam_search > 0.0);
            prop_assert!(e.cam_write > 0.0);
            prop_assert!(e.postproc > 0.0);
            prop_assert!(e.ctxgen > 0.0);
            let total = e.total();
            prop_assert!(total > prev_total, "k={} total {} !> {}", k, total, prev_total);
            prev_total = total;
        }
    }

    #[test]
    fn cycle_models_ordered(layer in layer_strategy(), k in k_strategy()) {
        let base = CamScheduler::new(128, Dataflow::ActivationStationary).unwrap();
        let pipe = base.clone().layer_perf(&layer, k, false).unwrap().cycles;
        let seq = base
            .clone()
            .with_cycle_model(CycleModel::Sequential)
            .layer_perf(&layer, k, false)
            .unwrap()
            .cycles;
        let search = base
            .with_cycle_model(CycleModel::SearchOnly)
            .layer_perf(&layer, k, false)
            .unwrap()
            .cycles;
        prop_assert!(search <= pipe);
        prop_assert!(pipe <= seq);
    }

    #[test]
    fn more_rows_never_increase_searches(layer in layer_strategy(), k in k_strategy()) {
        let mut prev = u64::MAX;
        for rows in [64usize, 128, 256, 512] {
            let sched = CamScheduler::new(rows, Dataflow::ActivationStationary).unwrap();
            let perf = sched.layer_perf(&layer, k, true).unwrap();
            prop_assert!(perf.searches <= prev);
            prev = perf.searches;
        }
    }

    #[test]
    fn first_layer_never_pays_ctxgen(layer in layer_strategy(), k in k_strategy()) {
        let sched = CamScheduler::new(64, Dataflow::WeightStationary).unwrap();
        let first = sched.layer_perf(&layer, k, true).unwrap();
        prop_assert_eq!(first.energy.ctxgen, 0.0);
    }

    #[test]
    fn plan_validation_consistent(len in 1usize..30) {
        let plan = HashPlan::PerLayer(vec![256; len]);
        prop_assert!(plan.validate(len).is_ok());
        prop_assert!(plan.validate(len + 1).is_err());
        for i in 0..len {
            prop_assert_eq!(plan.length_for(i).unwrap(), 256);
        }
        prop_assert!(plan.length_for(len).is_err());
    }
}
