//! Scaled-down trainable variants of the paper's four CNN families.
//!
//! Full-size VGG16/ResNet18 cannot be trained on a CPU in-session, but the
//! accuracy experiments (Fig. 5) only need *trained networks of the same
//! topology family* whose per-layer hash-length sensitivity can be
//! measured. These constructors reproduce each family's structure —
//! depth pattern, pooling schedule, residual wiring — at a reduced channel
//! width (`width` = channels of the first stage; the paper's originals
//! correspond to width 64).

use deepcam_tensor::layer::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use deepcam_tensor::ops::conv::Conv2dConfig;
use rand::Rng;

use crate::cnn::{Block, Cnn, ResBlock};

fn conv_block<R: Rng + ?Sized>(
    rng: &mut R,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Block {
    Block::Conv(Conv2d::new(
        rng,
        Conv2dConfig::new(in_c, out_c, k)
            .with_stride(stride)
            .with_padding(pad),
    ))
}

/// LeNet5 for 1×28×28 inputs (this one is full-size — it is already
/// small enough to train directly).
pub fn scaled_lenet5<R: Rng + ?Sized>(rng: &mut R, num_classes: usize) -> Cnn {
    let blocks = vec![
        conv_block(rng, 1, 6, 5, 1, 2), // 28×28
        Block::Relu(ReLU::new()),
        Block::MaxPool(MaxPool2d::new(2)), // 14×14
        conv_block(rng, 6, 16, 5, 1, 0),   // 10×10
        Block::Relu(ReLU::new()),
        Block::MaxPool(MaxPool2d::new(2)), // 5×5
        Block::Flatten(Flatten::new()),
        Block::Linear(Linear::new(rng, 16 * 5 * 5, 120)),
        Block::Relu(ReLU::new()),
        Block::Linear(Linear::new(rng, 120, 84)),
        Block::Relu(ReLU::new()),
        Block::Linear(Linear::new(rng, 84, num_classes)),
    ];
    Cnn::new("LeNet5", blocks, num_classes).with_input(1, 28, 28)
}

fn vgg_family<R: Rng + ?Sized>(
    rng: &mut R,
    name: &str,
    plan: &[isize],
    width: usize,
    num_classes: usize,
) -> Cnn {
    // plan entries: positive = conv with channels entry*width/8, -1 = pool.
    let mut blocks = Vec::new();
    let mut in_c = 3usize;
    for &e in plan {
        if e < 0 {
            blocks.push(Block::MaxPool(MaxPool2d::new(2)));
        } else {
            let out_c = (e as usize * width) / 8;
            blocks.push(conv_block(rng, in_c, out_c, 3, 1, 1));
            blocks.push(Block::Bn(BatchNorm2d::new(out_c)));
            blocks.push(Block::Relu(ReLU::new()));
            in_c = out_c;
        }
    }
    blocks.push(Block::Flatten(Flatten::new()));
    blocks.push(Block::Linear(Linear::new(rng, in_c, num_classes)));
    Cnn::new(name, blocks, num_classes).with_input(3, 32, 32)
}

/// Scaled VGG11 for 3×32×32 inputs. `width` is the first-stage channel
/// count (original: 64).
pub fn scaled_vgg11<R: Rng + ?Sized>(rng: &mut R, width: usize, num_classes: usize) -> Cnn {
    // Channel multipliers (×width/8): 8,16,32,32,64,64,64,64 of the
    // original 64,128,256,256,512,512,512,512 pattern.
    vgg_family(
        rng,
        "VGG11",
        &[8, -1, 16, -1, 32, 32, -1, 64, 64, -1, 64, 64, -1],
        width,
        num_classes,
    )
}

/// Scaled VGG16 for 3×32×32 inputs.
pub fn scaled_vgg16<R: Rng + ?Sized>(rng: &mut R, width: usize, num_classes: usize) -> Cnn {
    vgg_family(
        rng,
        "VGG16",
        &[
            8, 8, -1, 16, 16, -1, 32, 32, 32, -1, 64, 64, 64, -1, 64, 64, 64, -1,
        ],
        width,
        num_classes,
    )
}

fn basic_block<R: Rng + ?Sized>(rng: &mut R, in_c: usize, out_c: usize, stride: usize) -> Block {
    let body = vec![
        conv_block(rng, in_c, out_c, 3, stride, 1),
        Block::Bn(BatchNorm2d::new(out_c)),
        Block::Relu(ReLU::new()),
        conv_block(rng, out_c, out_c, 3, 1, 1),
        Block::Bn(BatchNorm2d::new(out_c)),
    ];
    if stride != 1 || in_c != out_c {
        let shortcut = vec![
            conv_block(rng, in_c, out_c, 1, stride, 0),
            Block::Bn(BatchNorm2d::new(out_c)),
        ];
        Block::Residual(ResBlock::with_shortcut(body, shortcut))
    } else {
        Block::Residual(ResBlock::new(body))
    }
}

/// Scaled CIFAR-style ResNet18 for 3×32×32 inputs. `width` is the stem
/// channel count (original: 64).
pub fn scaled_resnet18<R: Rng + ?Sized>(rng: &mut R, width: usize, num_classes: usize) -> Cnn {
    let w = width;
    let mut blocks = vec![
        conv_block(rng, 3, w, 3, 1, 1),
        Block::Bn(BatchNorm2d::new(w)),
        Block::Relu(ReLU::new()),
    ];
    let stages = [(w, 1usize), (2 * w, 2), (4 * w, 2), (8 * w, 2)];
    let mut in_c = w;
    for &(out_c, first_stride) in &stages {
        blocks.push(basic_block(rng, in_c, out_c, first_stride));
        blocks.push(basic_block(rng, out_c, out_c, 1));
        in_c = out_c;
    }
    blocks.push(Block::AvgPool(AvgPool2d::new(4))); // 4×4 → 1×1
    blocks.push(Block::Flatten(Flatten::new()));
    blocks.push(Block::Linear(Linear::new(rng, 8 * w, num_classes)));
    Cnn::new("ResNet18", blocks, num_classes).with_input(3, 32, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_tensor::rng::seeded_rng;
    use deepcam_tensor::{Layer, Shape, Tensor};

    #[test]
    fn lenet_shapes() {
        let mut rng = seeded_rng(0);
        let mut net = scaled_lenet5(&mut rng, 10);
        let x = Tensor::zeros(Shape::new(&[2, 1, 28, 28]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[2, 10]));
        assert_eq!(net.dot_layer_count(), 5);
    }

    #[test]
    fn vgg11_shapes() {
        let mut rng = seeded_rng(1);
        let mut net = scaled_vgg11(&mut rng, 8, 10);
        let x = Tensor::zeros(Shape::new(&[1, 3, 32, 32]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[1, 10]));
        assert_eq!(net.dot_layer_count(), 9); // 8 convs + fc, like the original
    }

    #[test]
    fn vgg16_shapes() {
        let mut rng = seeded_rng(2);
        let mut net = scaled_vgg16(&mut rng, 8, 100);
        let x = Tensor::zeros(Shape::new(&[1, 3, 32, 32]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[1, 100]));
        assert_eq!(net.dot_layer_count(), 14);
    }

    #[test]
    fn resnet18_shapes() {
        let mut rng = seeded_rng(3);
        let mut net = scaled_resnet18(&mut rng, 8, 100);
        let x = Tensor::zeros(Shape::new(&[1, 3, 32, 32]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[1, 100]));
        // Same dot-layer count as the full-size spec: 21.
        assert_eq!(net.dot_layer_count(), 21);
    }

    #[test]
    fn resnet18_backward_runs() {
        let mut rng = seeded_rng(4);
        let mut net = scaled_resnet18(&mut rng, 4, 10);
        let x = Tensor::zeros(Shape::new(&[2, 3, 32, 32]));
        let y = net.forward(&x, true).unwrap();
        let gx = net.backward(&Tensor::full(y.shape().clone(), 0.1)).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn width_scales_parameters() {
        let mut rng = seeded_rng(5);
        let mut small = scaled_vgg11(&mut rng, 8, 10);
        let mut rng2 = seeded_rng(5);
        let mut big = scaled_vgg11(&mut rng2, 16, 10);
        assert!(big.param_count() > 3 * small.param_count());
    }
}
