//! Mini-batch SGD training and evaluation for the scaled models.
//!
//! This is the "software baseline" (BL) pipeline of Fig. 5: the models
//! trained here are then compiled to CAM contexts by `deepcam-core` and
//! re-evaluated under approximate geometric dot-products (DC).

use deepcam_tensor::ops::loss::{accuracy, cross_entropy};
use deepcam_tensor::optim::Sgd;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{Layer, Shape, Tensor, TensorError};
use rand::seq::SliceRandom;

use crate::cnn::Cnn;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            seed: 0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

fn gather_batch(images: &Tensor, labels: &[usize], idx: &[usize]) -> (Tensor, Vec<usize>) {
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut data = Vec::with_capacity(idx.len() * sample);
    let mut lab = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&images.data()[i * sample..(i + 1) * sample]);
        lab.push(labels[i]);
    }
    let mut dims = vec![idx.len()];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    (
        Tensor::from_vec(data, Shape::new(&dims)).expect("batch volume is consistent"),
        lab,
    )
}

/// Trains `model` on `(images, labels)` and returns per-epoch statistics.
///
/// # Errors
///
/// Propagates tensor shape errors from the model — these indicate an
/// architecture/data mismatch.
pub fn train(
    model: &mut Cnn,
    images: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>, TensorError> {
    let n = images.shape().dim(0);
    assert_eq!(n, labels.len(), "label count must match image count");
    let mut opt = Sgd::new(cfg.lr)
        .with_momentum(cfg.momentum)
        .with_weight_decay(cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut rng = seeded_rng(cfg.seed);
    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (x, y) = gather_batch(images, labels, chunk);
            let logits = model.forward(&x, true)?;
            let out = cross_entropy(&logits, &y)?;
            loss_sum += out.loss;
            acc_sum += accuracy(&logits, &y)?;
            batches += 1;
            model.backward(&out.grad_logits)?;
            let mut params = model.params_mut();
            opt.step(&mut params)?;
        }
        history.push(EpochStats {
            epoch,
            loss: loss_sum / batches.max(1) as f32,
            accuracy: acc_sum / batches.max(1) as f32,
        });
    }
    Ok(history)
}

/// Evaluates top-1 accuracy in inference mode (running batch-norm stats).
///
/// # Errors
///
/// Propagates tensor shape errors from the model.
pub fn evaluate(
    model: &mut Cnn,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32, TensorError> {
    let n = images.shape().dim(0);
    assert_eq!(n, labels.len(), "label count must match image count");
    let mut correct = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let (x, y) = gather_batch(images, labels, chunk);
        let logits = model.forward(&x, false)?;
        correct += accuracy(&logits, &y)? * chunk.len() as f32;
    }
    Ok(correct / n.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaled::scaled_lenet5;
    use deepcam_tensor::rng::{fill_normal, seeded_rng as srng};

    /// Two-class toy set: class 0 = bright top half, class 1 = bright
    /// bottom half, plus noise.
    fn toy_data(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = srng(seed);
        let n = n_per_class * 2;
        let mut data = vec![0.0f32; n * 28 * 28];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            let img = &mut data[i * 784..(i + 1) * 784];
            fill_normal(&mut rng, img, 0.0, 0.3);
            let rows = if class == 0 { 0..14 } else { 14..28 };
            for r in rows {
                for v in &mut img[r * 28..(r + 1) * 28] {
                    *v += 1.0;
                }
            }
        }
        (
            Tensor::from_vec(data, Shape::new(&[n, 1, 28, 28])).unwrap(),
            labels,
        )
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = srng(7);
        let mut model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_data(30, 1);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 10,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
            seed: 3,
        };
        let hist = train(&mut model, &x, &y, &cfg).unwrap();
        assert!(hist.last().unwrap().loss < hist.first().unwrap().loss);
        let (xt, yt) = toy_data(10, 2);
        let acc = evaluate(&mut model, &xt, &yt, 8).unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn evaluate_untrained_is_chancy() {
        let mut rng = srng(8);
        let mut model = scaled_lenet5(&mut rng, 2);
        let (xt, yt) = toy_data(20, 4);
        let acc = evaluate(&mut model, &xt, &yt, 16).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn history_length_matches_epochs() {
        let mut rng = srng(9);
        let mut model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_data(5, 5);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let hist = train(&mut model, &x, &y, &cfg).unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].epoch, 0);
    }
}
