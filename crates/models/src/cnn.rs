//! Introspectable trainable CNNs.
//!
//! [`Cnn`] is a list of [`Block`]s — an *enum*, not trait objects — so
//! that `deepcam-core` can pattern-match on a trained network and compile
//! each conv/linear layer into CAM contexts while re-using the float
//! implementations of the peripheral layers (pool/BN/ReLU, which DeepCAM
//! executes digitally in its post-processing module anyway).

use deepcam_tensor::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, Param, ReLU,
};
use deepcam_tensor::ops::activation::{relu, relu_backward};
use deepcam_tensor::{Tensor, TensorError};

/// One block of a [`Cnn`].
pub enum Block {
    /// Convolution.
    Conv(Conv2d),
    /// Batch normalization.
    Bn(BatchNorm2d),
    /// ReLU activation.
    Relu(ReLU),
    /// Max pooling.
    MaxPool(MaxPool2d),
    /// Average pooling.
    AvgPool(AvgPool2d),
    /// NCHW → `[N, F]` flatten.
    Flatten(Flatten),
    /// Fully-connected layer.
    Linear(Linear),
    /// Residual basic block.
    Residual(ResBlock),
}

impl Block {
    /// Short kind label for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Block::Conv(_) => "Conv",
            Block::Bn(_) => "Bn",
            Block::Relu(_) => "Relu",
            Block::MaxPool(_) => "MaxPool",
            Block::AvgPool(_) => "AvgPool",
            Block::Flatten(_) => "Flatten",
            Block::Linear(_) => "Linear",
            Block::Residual(_) => "Residual",
        }
    }
}

impl Layer for Block {
    fn forward(&mut self, x: &Tensor, train: bool) -> deepcam_tensor::Result<Tensor> {
        match self {
            Block::Conv(l) => l.forward(x, train),
            Block::Bn(l) => l.forward(x, train),
            Block::Relu(l) => l.forward(x, train),
            Block::MaxPool(l) => l.forward(x, train),
            Block::AvgPool(l) => l.forward(x, train),
            Block::Flatten(l) => l.forward(x, train),
            Block::Linear(l) => l.forward(x, train),
            Block::Residual(l) => l.forward(x, train),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> deepcam_tensor::Result<Tensor> {
        match self {
            Block::Conv(l) => l.backward(grad_out),
            Block::Bn(l) => l.backward(grad_out),
            Block::Relu(l) => l.backward(grad_out),
            Block::MaxPool(l) => l.backward(grad_out),
            Block::AvgPool(l) => l.backward(grad_out),
            Block::Flatten(l) => l.backward(grad_out),
            Block::Linear(l) => l.backward(grad_out),
            Block::Residual(l) => l.backward(grad_out),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Block::Conv(l) => l.params_mut(),
            Block::Bn(l) => l.params_mut(),
            Block::Relu(l) => l.params_mut(),
            Block::MaxPool(l) => l.params_mut(),
            Block::AvgPool(l) => l.params_mut(),
            Block::Flatten(l) => l.params_mut(),
            Block::Linear(l) => l.params_mut(),
            Block::Residual(l) => l.params_mut(),
        }
    }

    fn name(&self) -> &'static str {
        self.kind()
    }
}

/// A ResNet basic block over [`Block`] lists:
/// `output = relu(body(x) + shortcut(x))`.
#[derive(Default)]
pub struct ResBlock {
    /// Main branch (conv-bn-relu-conv-bn).
    pub body: Vec<Block>,
    /// Projection branch; `None` = identity.
    pub shortcut: Option<Vec<Block>>,
    cached_sum: Option<Tensor>,
}

impl ResBlock {
    /// Creates a block with an identity shortcut.
    pub fn new(body: Vec<Block>) -> Self {
        ResBlock {
            body,
            shortcut: None,
            cached_sum: None,
        }
    }

    /// Creates a block with a projection shortcut.
    pub fn with_shortcut(body: Vec<Block>, shortcut: Vec<Block>) -> Self {
        ResBlock {
            body,
            shortcut: Some(shortcut),
            cached_sum: None,
        }
    }
}

fn forward_chain(blocks: &mut [Block], x: &Tensor, train: bool) -> deepcam_tensor::Result<Tensor> {
    let mut cur = x.clone();
    for b in blocks.iter_mut() {
        cur = b.forward(&cur, train)?;
    }
    Ok(cur)
}

fn backward_chain(blocks: &mut [Block], grad: &Tensor) -> deepcam_tensor::Result<Tensor> {
    let mut cur = grad.clone();
    for b in blocks.iter_mut().rev() {
        cur = b.backward(&cur)?;
    }
    Ok(cur)
}

impl Layer for ResBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> deepcam_tensor::Result<Tensor> {
        let main = forward_chain(&mut self.body, x, train)?;
        let skip = match &mut self.shortcut {
            Some(s) => forward_chain(s, x, train)?,
            None => x.clone(),
        };
        let sum = main.add(&skip)?;
        self.cached_sum = Some(sum.clone());
        Ok(relu(&sum))
    }

    fn backward(&mut self, grad_out: &Tensor) -> deepcam_tensor::Result<Tensor> {
        let sum = self
            .cached_sum
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("ResBlock"))?;
        let grad_sum = relu_backward(grad_out, sum)?;
        let grad_main = backward_chain(&mut self.body, &grad_sum)?;
        let grad_skip = match &mut self.shortcut {
            Some(s) => backward_chain(s, &grad_sum)?,
            None => grad_sum,
        };
        grad_main.add(&grad_skip)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self.body.iter_mut().flat_map(|b| b.params_mut()).collect();
        if let Some(s) = &mut self.shortcut {
            p.extend(s.iter_mut().flat_map(|b| b.params_mut()));
        }
        p
    }

    fn name(&self) -> &'static str {
        "ResBlock"
    }
}

/// A trainable, introspectable CNN.
pub struct Cnn {
    /// Model family name (e.g. `"ScaledVGG11"`).
    pub name: String,
    /// Blocks in execution order.
    pub blocks: Vec<Block>,
    /// Classifier classes.
    pub num_classes: usize,
    /// Expected input `(channels, height, width)` per image, when known.
    ///
    /// Purely descriptive for training (`forward` accepts whatever batch
    /// it is handed), but it lets the compilation pipeline infer static
    /// per-layer shapes — patch counts, peripheral element counts — so a
    /// trained model can be lowered to the same `LayerIr` a weight-free
    /// `ModelSpec` produces. `None` still lowers; only the quantities
    /// that need spatial dims are left at zero.
    pub input: Option<(usize, usize, usize)>,
}

impl Cnn {
    /// Creates a model from blocks (input shape unknown; see
    /// [`Cnn::with_input`]).
    pub fn new(name: impl Into<String>, blocks: Vec<Block>, num_classes: usize) -> Self {
        Cnn {
            name: name.into(),
            blocks,
            num_classes,
            input: None,
        }
    }

    /// Builder-style declaration of the expected per-image input shape.
    pub fn with_input(mut self, channels: usize, height: usize, width: usize) -> Self {
        self.input = Some((channels, height, width));
        self
    }

    /// Total scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Counts the dot-product layers (conv + linear, including those
    /// inside residual blocks) — the layers that receive per-layer hash
    /// lengths in DeepCAM.
    pub fn dot_layer_count(&self) -> usize {
        fn count(blocks: &[Block]) -> usize {
            blocks
                .iter()
                .map(|b| match b {
                    Block::Conv(_) | Block::Linear(_) => 1,
                    Block::Residual(r) => {
                        count(&r.body) + r.shortcut.as_ref().map_or(0, |s| count(s))
                    }
                    _ => 0,
                })
                .sum()
        }
        count(&self.blocks)
    }
}

impl Layer for Cnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> deepcam_tensor::Result<Tensor> {
        forward_chain(&mut self.blocks, x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> deepcam_tensor::Result<Tensor> {
        backward_chain(&mut self.blocks, grad_out)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.blocks
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "Cnn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_tensor::ops::conv::Conv2dConfig;
    use deepcam_tensor::rng::seeded_rng;
    use deepcam_tensor::Shape;

    fn tiny_cnn() -> Cnn {
        let mut rng = seeded_rng(0);
        Cnn::new(
            "tiny",
            vec![
                Block::Conv(Conv2d::new(
                    &mut rng,
                    Conv2dConfig::new(1, 4, 3).with_padding(1),
                )),
                Block::Relu(ReLU::new()),
                Block::MaxPool(MaxPool2d::new(2)),
                Block::Flatten(Flatten::new()),
                Block::Linear(Linear::new(&mut rng, 4 * 4 * 4, 3)),
            ],
            3,
        )
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = tiny_cnn();
        let x = Tensor::zeros(Shape::new(&[2, 1, 8, 8]));
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[2, 3]));
        let gx = net.backward(&Tensor::full(y.shape().clone(), 1.0)).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn dot_layer_count_includes_residual_internals() {
        let mut rng = seeded_rng(1);
        let body = vec![
            Block::Conv(Conv2d::new(
                &mut rng,
                Conv2dConfig::new(4, 4, 3).with_padding(1),
            )),
            Block::Bn(BatchNorm2d::new(4)),
            Block::Relu(ReLU::new()),
            Block::Conv(Conv2d::new(
                &mut rng,
                Conv2dConfig::new(4, 4, 3).with_padding(1),
            )),
            Block::Bn(BatchNorm2d::new(4)),
        ];
        let shortcut = vec![Block::Conv(Conv2d::new(
            &mut rng,
            Conv2dConfig::new(4, 4, 1),
        ))];
        let net = Cnn::new(
            "res",
            vec![Block::Residual(ResBlock::with_shortcut(body, shortcut))],
            2,
        );
        assert_eq!(net.dot_layer_count(), 3);
    }

    #[test]
    fn residual_block_trains() {
        let mut rng = seeded_rng(2);
        let body = vec![
            Block::Conv(Conv2d::new(
                &mut rng,
                Conv2dConfig::new(2, 2, 3).with_padding(1),
            )),
            Block::Bn(BatchNorm2d::new(2)),
        ];
        let mut block = ResBlock::new(body);
        let x = Tensor::full(Shape::new(&[2, 2, 4, 4]), 0.3);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let g = block
            .backward(&Tensor::full(x.shape().clone(), 0.1))
            .unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(!block.params_mut().is_empty());
    }

    #[test]
    fn kind_labels() {
        let net = tiny_cnn();
        let kinds: Vec<&str> = net.blocks.iter().map(|b| b.kind()).collect();
        assert_eq!(kinds, vec!["Conv", "Relu", "MaxPool", "Flatten", "Linear"]);
    }

    #[test]
    fn param_count_positive() {
        assert!(tiny_cnn().param_count() > 0);
    }
}
