//! # deepcam-models
//!
//! The CNN model zoo of the DeepCAM reproduction, in two parallel
//! representations:
//!
//! 1. **Shape specs** ([`spec`], [`zoo`]) — exact layer geometries of the
//!    paper's four full-size workloads (LeNet5/MNIST, VGG11/CIFAR10,
//!    VGG16/CIFAR100, ResNet18/CIFAR100). Cycle and energy models only
//!    need shapes, never weights, so every performance experiment
//!    (Figs. 8–10, Table II) runs on these.
//! 2. **Trainable models** ([`cnn`], [`scaled`]) — scaled-down but
//!    topologically faithful variants of the same four families, built on
//!    `deepcam-tensor` and trained in-repo on the synthetic datasets for
//!    the accuracy experiments (Fig. 5). The [`cnn::Block`] enum keeps
//!    weights introspectable so `deepcam-core` can compile a trained model
//!    into CAM contexts.
//!
//! # Example
//!
//! ```
//! use deepcam_models::zoo;
//!
//! let lenet = zoo::lenet5();
//! // The classic LeNet5 has ~416k MACs per 32x32 inference.
//! let macs = lenet.total_macs();
//! assert!(macs > 380_000 && macs < 450_000, "got {macs}");
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod cnn;
pub mod scaled;
pub mod spec;
pub mod train;
pub mod zoo;

pub use cnn::{Block, Cnn, ResBlock};
pub use spec::{ConvSpec, DotLayer, LayerSpec, LinearSpec, ModelSpec, PoolKind, PoolSpec};
