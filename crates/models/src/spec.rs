//! Layer-shape specifications for performance and energy modelling.
//!
//! A [`ModelSpec`] is the weight-free description of a CNN: enough to
//! compute MAC counts, im2col geometry, and the CAM mapping quantities
//! used by every scheduler — how many dot-products a layer performs
//! (`P`), against how many kernels (`M`), at what vector length (`n`).

use serde::{Deserialize, Serialize};

/// 2-D convolution shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Layer name, e.g. `"conv1"`.
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (kernels, `M`).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl ConvSpec {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output spatial positions per image: `P = OH·OW`.
    pub fn positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// im2col patch length: `n = C·K·K`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Multiply-accumulates per image.
    pub fn macs(&self) -> u64 {
        self.positions() as u64 * self.out_channels as u64 * self.patch_len() as u64
    }

    /// Weight parameter count (no bias).
    pub fn params(&self) -> u64 {
        self.out_channels as u64 * self.patch_len() as u64
    }
}

/// Fully-connected layer shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinearSpec {
    /// Layer name, e.g. `"fc1"`.
    pub name: String,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl LinearSpec {
    /// MACs per image.
    pub fn macs(&self) -> u64 {
        self.in_features as u64 * self.out_features as u64
    }

    /// Weight parameter count (no bias).
    pub fn params(&self) -> u64 {
        self.macs()
    }
}

/// Pooling kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (including global average pooling).
    Avg,
}

/// Pooling layer shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Max or average.
    pub kind: PoolKind,
    /// Window (= stride; non-overlapping, as in all four workloads).
    pub kernel: usize,
    /// Channels passing through.
    pub channels: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl PoolSpec {
    /// Output elements per image.
    pub fn out_elements(&self) -> usize {
        self.channels * (self.in_h / self.kernel) * (self.in_w / self.kernel)
    }

    /// Comparison/add operations per image (window size per output).
    pub fn ops(&self) -> u64 {
        (self.out_elements() * self.kernel * self.kernel) as u64
    }
}

/// One layer of a model spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Convolution (a dot-product layer).
    Conv(ConvSpec),
    /// Fully-connected (a dot-product layer).
    Linear(LinearSpec),
    /// Pooling.
    Pool(PoolSpec),
    /// Batch normalization over `elements` activations.
    BatchNorm {
        /// Activations normalized per image.
        elements: usize,
    },
    /// Element-wise activation over `elements` activations.
    Activation {
        /// Activations touched per image.
        elements: usize,
    },
    /// Residual skip-connection addition over `elements` activations.
    EltwiseAdd {
        /// Elements added per image.
        elements: usize,
    },
}

impl LayerSpec {
    /// MACs per image (zero for non-dot-product layers).
    pub fn macs(&self) -> u64 {
        match self {
            LayerSpec::Conv(c) => c.macs(),
            LayerSpec::Linear(l) => l.macs(),
            _ => 0,
        }
    }

    /// Returns `true` for layers whose dot-products DeepCAM offloads to
    /// the CAM (conv and linear).
    pub fn is_dot_layer(&self) -> bool {
        matches!(self, LayerSpec::Conv(_) | LayerSpec::Linear(_))
    }
}

/// The CAM-mapping view of one dot-product layer: `P` input vectors
/// against `M` kernel vectors of length `n`.
///
/// * Convolution: `P` = output positions, `M` = kernels, `n` = patch len.
/// * Linear: `P` = 1 (one input vector per image), `M` = output neurons,
///   `n` = input features.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DotLayer {
    /// Source layer name.
    pub name: String,
    /// Number of input (activation) vectors per image.
    pub p: usize,
    /// Number of kernel (weight) vectors.
    pub m: usize,
    /// Vector length before hashing.
    pub n: usize,
    /// Unique input activations feeding the layer (`C·H·W` for a conv —
    /// smaller than `p·n` because im2col duplicates overlapping pixels).
    /// Memory-traffic models charge DRAM per unique element.
    pub input_elems: usize,
}

impl DotLayer {
    /// Dot products per image: `P·M`.
    pub fn dot_products(&self) -> u64 {
        self.p as u64 * self.m as u64
    }

    /// MACs per image.
    pub fn macs(&self) -> u64 {
        self.dot_products() * self.n as u64
    }
}

impl serde::bin::BinCodec for ConvSpec {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_str(&self.name);
        w.put_usize(self.in_channels);
        w.put_usize(self.out_channels);
        w.put_usize(self.kernel);
        w.put_usize(self.stride);
        w.put_usize(self.padding);
        w.put_usize(self.in_h);
        w.put_usize(self.in_w);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        Ok(ConvSpec {
            name: r.get_str()?,
            in_channels: r.get_usize()?,
            out_channels: r.get_usize()?,
            kernel: r.get_usize()?,
            stride: r.get_usize()?,
            padding: r.get_usize()?,
            in_h: r.get_usize()?,
            in_w: r.get_usize()?,
        })
    }
}

impl serde::bin::BinCodec for LinearSpec {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_str(&self.name);
        w.put_usize(self.in_features);
        w.put_usize(self.out_features);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        Ok(LinearSpec {
            name: r.get_str()?,
            in_features: r.get_usize()?,
            out_features: r.get_usize()?,
        })
    }
}

impl serde::bin::BinCodec for PoolSpec {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_u8(match self.kind {
            PoolKind::Max => 0,
            PoolKind::Avg => 1,
        });
        w.put_usize(self.kernel);
        w.put_usize(self.channels);
        w.put_usize(self.in_h);
        w.put_usize(self.in_w);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        let kind = match r.get_u8()? {
            0 => PoolKind::Max,
            1 => PoolKind::Avg,
            other => {
                return Err(serde::bin::BinError::Invalid(format!(
                    "PoolKind tag {other}"
                )))
            }
        };
        Ok(PoolSpec {
            kind,
            kernel: r.get_usize()?,
            channels: r.get_usize()?,
            in_h: r.get_usize()?,
            in_w: r.get_usize()?,
        })
    }
}

impl serde::bin::BinCodec for LayerSpec {
    fn encode(&self, w: &mut serde::bin::Writer) {
        match self {
            LayerSpec::Conv(c) => {
                w.put_u8(0);
                c.encode(w);
            }
            LayerSpec::Linear(l) => {
                w.put_u8(1);
                l.encode(w);
            }
            LayerSpec::Pool(p) => {
                w.put_u8(2);
                p.encode(w);
            }
            LayerSpec::BatchNorm { elements } => {
                w.put_u8(3);
                w.put_usize(*elements);
            }
            LayerSpec::Activation { elements } => {
                w.put_u8(4);
                w.put_usize(*elements);
            }
            LayerSpec::EltwiseAdd { elements } => {
                w.put_u8(5);
                w.put_usize(*elements);
            }
        }
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(LayerSpec::Conv(serde::bin::BinCodec::decode(r)?)),
            1 => Ok(LayerSpec::Linear(serde::bin::BinCodec::decode(r)?)),
            2 => Ok(LayerSpec::Pool(serde::bin::BinCodec::decode(r)?)),
            3 => Ok(LayerSpec::BatchNorm {
                elements: r.get_usize()?,
            }),
            4 => Ok(LayerSpec::Activation {
                elements: r.get_usize()?,
            }),
            5 => Ok(LayerSpec::EltwiseAdd {
                elements: r.get_usize()?,
            }),
            other => Err(serde::bin::BinError::Invalid(format!(
                "LayerSpec tag {other}"
            ))),
        }
    }
}

impl serde::bin::BinCodec for DotLayer {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_str(&self.name);
        w.put_usize(self.p);
        w.put_usize(self.m);
        w.put_usize(self.n);
        w.put_usize(self.input_elems);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        Ok(DotLayer {
            name: r.get_str()?,
            p: r.get_usize()?,
            m: r.get_usize()?,
            n: r.get_usize()?,
            input_elems: r.get_usize()?,
        })
    }
}

/// A complete weight-free model description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name, e.g. `"VGG11"`.
    pub name: String,
    /// Dataset label, e.g. `"CIFAR10"` (as in the paper's workload pairs).
    pub dataset: String,
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Classifier classes.
    pub num_classes: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total MACs per image.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total weight parameters.
    pub fn total_params(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                LayerSpec::Conv(c) => c.params(),
                LayerSpec::Linear(l) => l.params(),
                _ => 0,
            })
            .sum()
    }

    /// The dot-product layers in CAM-mapping form, execution order.
    pub fn dot_layers(&self) -> Vec<DotLayer> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                LayerSpec::Conv(c) => Some(DotLayer {
                    name: c.name.clone(),
                    p: c.positions(),
                    m: c.out_channels,
                    n: c.patch_len(),
                    input_elems: c.in_channels * c.in_h * c.in_w,
                }),
                LayerSpec::Linear(l) => Some(DotLayer {
                    name: l.name.clone(),
                    p: 1,
                    m: l.out_features,
                    n: l.in_features,
                    input_elems: l.in_features,
                }),
                _ => None,
            })
            .collect()
    }

    /// `"name dataset"` workload label used in figures.
    pub fn workload(&self) -> String {
        format!("{} {}", self.name, self.dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_c: usize, out_c: usize, k: usize, s: usize, p: usize, h: usize) -> ConvSpec {
        ConvSpec {
            name: "c".into(),
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride: s,
            padding: p,
            in_h: h,
            in_w: h,
        }
    }

    #[test]
    fn conv_geometry() {
        let c = conv(1, 6, 5, 1, 0, 32);
        assert_eq!((c.out_h(), c.out_w()), (28, 28));
        assert_eq!(c.positions(), 784);
        assert_eq!(c.patch_len(), 25);
        assert_eq!(c.macs(), 784 * 6 * 25);
    }

    #[test]
    fn strided_padded_conv() {
        let c = conv(64, 128, 3, 2, 1, 32);
        assert_eq!(c.out_h(), 16);
        assert_eq!(c.patch_len(), 576);
    }

    #[test]
    fn linear_macs() {
        let l = LinearSpec {
            name: "fc".into(),
            in_features: 120,
            out_features: 84,
        };
        assert_eq!(l.macs(), 10_080);
    }

    #[test]
    fn dot_layers_extract_conv_and_linear() {
        let spec = ModelSpec {
            name: "T".into(),
            dataset: "D".into(),
            input: (1, 8, 8),
            num_classes: 2,
            layers: vec![
                LayerSpec::Conv(conv(1, 4, 3, 1, 1, 8)),
                LayerSpec::Activation { elements: 256 },
                LayerSpec::Linear(LinearSpec {
                    name: "fc".into(),
                    in_features: 256,
                    out_features: 2,
                }),
            ],
        };
        let dots = spec.dot_layers();
        assert_eq!(dots.len(), 2);
        assert_eq!(dots[0].p, 64);
        assert_eq!(dots[0].m, 4);
        assert_eq!(dots[0].n, 9);
        assert_eq!(dots[1].p, 1);
        assert_eq!(dots[1].m, 2);
        assert_eq!(dots[1].n, 256);
        assert_eq!(spec.total_macs(), 64 * 4 * 9 + 512);
    }

    #[test]
    fn pool_ops() {
        let p = PoolSpec {
            kind: PoolKind::Max,
            kernel: 2,
            channels: 16,
            in_h: 10,
            in_w: 10,
        };
        assert_eq!(p.out_elements(), 16 * 25);
        assert_eq!(p.ops(), 16 * 25 * 4);
    }
}
