//! Full-size shape specs of the paper's four workloads (Table I).
//!
//! These match the standard CIFAR-style definitions the paper evaluates:
//! LeNet5 on 32×32 MNIST (the classic zero-padded variant), VGG11/VGG16
//! with 3×3 convolutions and a single 512→classes classifier head (the
//! common CIFAR adaptation), and the CIFAR ResNet18 with a 3×3 stem.
//! Weights never appear here — cycles and energy depend only on geometry.

use crate::spec::{ConvSpec, LayerSpec, LinearSpec, ModelSpec, PoolKind, PoolSpec};

fn conv(name: &str, in_c: usize, out_c: usize, k: usize, s: usize, p: usize, h: usize) -> ConvSpec {
    ConvSpec {
        name: name.to_string(),
        in_channels: in_c,
        out_channels: out_c,
        kernel: k,
        stride: s,
        padding: p,
        in_h: h,
        in_w: h,
    }
}

fn push_conv_bn_relu(layers: &mut Vec<LayerSpec>, c: ConvSpec) -> usize {
    let out_elems = c.positions() * c.out_channels;
    let out_h = c.out_h();
    layers.push(LayerSpec::Conv(c));
    layers.push(LayerSpec::BatchNorm {
        elements: out_elems,
    });
    layers.push(LayerSpec::Activation {
        elements: out_elems,
    });
    out_h
}

/// Classic LeNet5 for 32×32 MNIST (~416k MACs, ~62k parameters).
pub fn lenet5() -> ModelSpec {
    let mut layers = vec![
        // conv1: 1→6 k5 on 32×32 → 28×28
        LayerSpec::Conv(conv("conv1", 1, 6, 5, 1, 0, 32)),
        LayerSpec::Activation {
            elements: 6 * 28 * 28,
        },
    ];
    layers.push(LayerSpec::Pool(PoolSpec {
        kind: PoolKind::Avg,
        kernel: 2,
        channels: 6,
        in_h: 28,
        in_w: 28,
    }));
    // conv2: 6→16 k5 on 14×14 → 10×10
    layers.push(LayerSpec::Conv(conv("conv2", 6, 16, 5, 1, 0, 14)));
    layers.push(LayerSpec::Activation {
        elements: 16 * 10 * 10,
    });
    layers.push(LayerSpec::Pool(PoolSpec {
        kind: PoolKind::Avg,
        kernel: 2,
        channels: 16,
        in_h: 10,
        in_w: 10,
    }));
    // conv3: 16→120 k5 on 5×5 → 1×1 (the "C5" layer)
    layers.push(LayerSpec::Conv(conv("conv3", 16, 120, 5, 1, 0, 5)));
    layers.push(LayerSpec::Activation { elements: 120 });
    layers.push(LayerSpec::Linear(LinearSpec {
        name: "fc1".into(),
        in_features: 120,
        out_features: 84,
    }));
    layers.push(LayerSpec::Activation { elements: 84 });
    layers.push(LayerSpec::Linear(LinearSpec {
        name: "fc2".into(),
        in_features: 84,
        out_features: 10,
    }));
    ModelSpec {
        name: "LeNet5".into(),
        dataset: "MNIST".into(),
        input: (1, 32, 32),
        num_classes: 10,
        layers,
    }
}

fn vgg(name: &str, dataset: &str, plan: &[usize], num_classes: usize) -> ModelSpec {
    // `plan` entries: channel count for a conv, or 0 for a max-pool.
    let mut layers = Vec::new();
    let mut in_c = 3usize;
    let mut h = 32usize;
    let mut conv_idx = 0usize;
    for &entry in plan {
        if entry == 0 {
            layers.push(LayerSpec::Pool(PoolSpec {
                kind: PoolKind::Max,
                kernel: 2,
                channels: in_c,
                in_h: h,
                in_w: h,
            }));
            h /= 2;
        } else {
            conv_idx += 1;
            push_conv_bn_relu(
                &mut layers,
                conv(&format!("conv{conv_idx}"), in_c, entry, 3, 1, 1, h),
            );
            in_c = entry;
        }
    }
    layers.push(LayerSpec::Linear(LinearSpec {
        name: "fc".into(),
        in_features: in_c,
        out_features: num_classes,
    }));
    ModelSpec {
        name: name.into(),
        dataset: dataset.into(),
        input: (3, 32, 32),
        num_classes,
        layers,
    }
}

/// VGG11 for CIFAR10 (~153M MACs).
pub fn vgg11() -> ModelSpec {
    vgg(
        "VGG11",
        "CIFAR10",
        &[64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0],
        10,
    )
}

/// VGG16 for CIFAR100 (~313M MACs).
pub fn vgg16() -> ModelSpec {
    vgg(
        "VGG16",
        "CIFAR100",
        &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
        ],
        100,
    )
}

/// CIFAR-style ResNet18 for CIFAR100 (~555M MACs).
pub fn resnet18() -> ModelSpec {
    let mut layers = Vec::new();
    let mut h = 32usize;
    // Stem.
    push_conv_bn_relu(&mut layers, conv("conv1", 3, 64, 3, 1, 1, h));
    let mut in_c = 64usize;
    let mut block_idx = 0usize;
    // Four stages of two BasicBlocks each.
    for &(out_c, first_stride) in &[(64usize, 1usize), (128, 2), (256, 2), (512, 2)] {
        for b in 0..2 {
            block_idx += 1;
            let stride = if b == 0 { first_stride } else { 1 };
            let name_a = format!("layer{block_idx}a");
            let name_b = format!("layer{block_idx}b");
            let ca = conv(&name_a, in_c, out_c, 3, stride, 1, h);
            let out_h = ca.out_h();
            let out_elems = out_c * out_h * out_h;
            layers.push(LayerSpec::Conv(ca));
            layers.push(LayerSpec::BatchNorm {
                elements: out_elems,
            });
            layers.push(LayerSpec::Activation {
                elements: out_elems,
            });
            layers.push(LayerSpec::Conv(conv(&name_b, out_c, out_c, 3, 1, 1, out_h)));
            layers.push(LayerSpec::BatchNorm {
                elements: out_elems,
            });
            if stride != 1 || in_c != out_c {
                // Projection shortcut.
                layers.push(LayerSpec::Conv(conv(
                    &format!("layer{block_idx}s"),
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                    h,
                )));
                layers.push(LayerSpec::BatchNorm {
                    elements: out_elems,
                });
            }
            layers.push(LayerSpec::EltwiseAdd {
                elements: out_elems,
            });
            layers.push(LayerSpec::Activation {
                elements: out_elems,
            });
            h = out_h;
            in_c = out_c;
        }
    }
    // Global average pool 4×4 → 1×1 and classifier.
    layers.push(LayerSpec::Pool(PoolSpec {
        kind: PoolKind::Avg,
        kernel: h,
        channels: 512,
        in_h: h,
        in_w: h,
    }));
    layers.push(LayerSpec::Linear(LinearSpec {
        name: "fc".into(),
        in_features: 512,
        out_features: 100,
    }));
    ModelSpec {
        name: "ResNet18".into(),
        dataset: "CIFAR100".into(),
        input: (3, 32, 32),
        num_classes: 100,
        layers,
    }
}

/// ImageNet-shape ResNet18 (224×224 input, 7×7 stem, ~1.8 GMACs).
///
/// Not one of the paper's Table I workloads, but included because the
/// paper's claimed 8× speedup scaling from 64→512 CAM rows requires
/// feature maps with ≥512 output positions in every stage — true at
/// ImageNet resolution, false at CIFAR resolution (see EXPERIMENTS.md).
pub fn resnet18_imagenet() -> ModelSpec {
    let mut layers = Vec::new();
    // 7×7/2 stem: 224 → 112, then 3×3/2 max pool → 56.
    let stem = conv("conv1", 3, 64, 7, 2, 3, 224);
    let stem_h = stem.out_h();
    let stem_elems = 64 * stem_h * stem_h;
    layers.push(LayerSpec::Conv(stem));
    layers.push(LayerSpec::BatchNorm {
        elements: stem_elems,
    });
    layers.push(LayerSpec::Activation {
        elements: stem_elems,
    });
    layers.push(LayerSpec::Pool(PoolSpec {
        kind: PoolKind::Max,
        kernel: 2,
        channels: 64,
        in_h: stem_h,
        in_w: stem_h,
    }));
    let mut h = stem_h / 2; // 56
    let mut in_c = 64usize;
    let mut block_idx = 0usize;
    for &(out_c, first_stride) in &[(64usize, 1usize), (128, 2), (256, 2), (512, 2)] {
        for b in 0..2 {
            block_idx += 1;
            let stride = if b == 0 { first_stride } else { 1 };
            let ca = conv(&format!("layer{block_idx}a"), in_c, out_c, 3, stride, 1, h);
            let out_h = ca.out_h();
            let out_elems = out_c * out_h * out_h;
            layers.push(LayerSpec::Conv(ca));
            layers.push(LayerSpec::BatchNorm {
                elements: out_elems,
            });
            layers.push(LayerSpec::Activation {
                elements: out_elems,
            });
            layers.push(LayerSpec::Conv(conv(
                &format!("layer{block_idx}b"),
                out_c,
                out_c,
                3,
                1,
                1,
                out_h,
            )));
            layers.push(LayerSpec::BatchNorm {
                elements: out_elems,
            });
            if stride != 1 || in_c != out_c {
                layers.push(LayerSpec::Conv(conv(
                    &format!("layer{block_idx}s"),
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                    h,
                )));
                layers.push(LayerSpec::BatchNorm {
                    elements: out_elems,
                });
            }
            layers.push(LayerSpec::EltwiseAdd {
                elements: out_elems,
            });
            layers.push(LayerSpec::Activation {
                elements: out_elems,
            });
            h = out_h;
            in_c = out_c;
        }
    }
    layers.push(LayerSpec::Pool(PoolSpec {
        kind: PoolKind::Avg,
        kernel: h,
        channels: 512,
        in_h: h,
        in_w: h,
    }));
    layers.push(LayerSpec::Linear(LinearSpec {
        name: "fc".into(),
        in_features: 512,
        out_features: 1000,
    }));
    ModelSpec {
        name: "ResNet18-ImageNet".into(),
        dataset: "ImageNet".into(),
        input: (3, 224, 224),
        num_classes: 1000,
        layers,
    }
}

/// All four paper workloads in Table I order.
pub fn all_workloads() -> Vec<ModelSpec> {
    vec![lenet5(), vgg11(), vgg16(), resnet18()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_macs_match_classic() {
        let m = lenet5();
        // conv1 117.6k + conv2 240k + conv3 48k + fc 10.9k ≈ 416.5k
        let macs = m.total_macs();
        assert!((380_000..450_000).contains(&(macs as usize)), "{macs}");
        assert_eq!(m.dot_layers().len(), 5);
    }

    #[test]
    fn lenet5_first_layer_matches_paper_example() {
        // §IV-B example: 32×32 single-channel input, 6 kernels of 5×5 →
        // 784 input vectors for 6 kernel vectors.
        let m = lenet5();
        let d = &m.dot_layers()[0];
        assert_eq!(d.p, 28 * 28);
        assert_eq!(d.m, 6);
        assert_eq!(d.n, 25);
    }

    #[test]
    fn vgg11_structure() {
        let m = vgg11();
        let dots = m.dot_layers();
        assert_eq!(dots.len(), 9); // 8 convs + 1 fc
        let macs = m.total_macs();
        // Standard CIFAR VGG11 ≈ 153M MACs.
        assert!((140e6..170e6).contains(&(macs as f64)), "{macs}");
    }

    #[test]
    fn vgg16_structure() {
        let m = vgg16();
        assert_eq!(m.dot_layers().len(), 14); // 13 convs + 1 fc
        let macs = m.total_macs() as f64;
        assert!((290e6..340e6).contains(&macs), "{macs}");
        assert_eq!(m.num_classes, 100);
    }

    #[test]
    fn resnet18_structure() {
        let m = resnet18();
        // 1 stem + 8 blocks × 2 convs + 3 projection shortcuts + 1 fc = 21.
        assert_eq!(m.dot_layers().len(), 21);
        let macs = m.total_macs() as f64;
        // CIFAR ResNet18 ≈ 555M MACs.
        assert!((500e6..620e6).contains(&macs), "{macs}");
    }

    #[test]
    fn resnet18_spatial_flow() {
        // Feature maps: 32 → 32 → 16 → 8 → 4, then global pool.
        let m = resnet18();
        let last_conv = m
            .layers
            .iter()
            .filter_map(|l| match l {
                crate::spec::LayerSpec::Conv(c) => Some(c),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(last_conv.out_h(), 4);
    }

    #[test]
    fn workload_ordering_by_macs() {
        // The paper's efficiency ratios shrink from LeNet to ResNet18
        // because total work grows: MACs must be strictly increasing.
        let w = all_workloads();
        for pair in w.windows(2) {
            assert!(
                pair[0].total_macs() < pair[1].total_macs(),
                "{} !< {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn imagenet_resnet18_shapes() {
        let m = resnet18_imagenet();
        // 1 stem + 16 block convs + 3 shortcuts + 1 fc = 21 dot layers.
        assert_eq!(m.dot_layers().len(), 21);
        let macs = m.total_macs() as f64;
        // Standard ImageNet ResNet18 ≈ 1.8 GMACs.
        assert!((1.6e9..2.0e9).contains(&macs), "{macs}");
        // Every conv stage keeps P ≥ 49; early stages have thousands of
        // positions, which is what makes the row sweep scale. (The fc
        // layer always has P = 1.)
        let min_conv_p = m
            .dot_layers()
            .iter()
            .filter(|d| d.name != "fc")
            .map(|d| d.p)
            .min()
            .unwrap();
        assert!(min_conv_p >= 49, "min conv P {min_conv_p}");
    }

    #[test]
    fn workload_labels() {
        assert_eq!(lenet5().workload(), "LeNet5 MNIST");
        assert_eq!(resnet18().workload(), "ResNet18 CIFAR100");
    }
}
