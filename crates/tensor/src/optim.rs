//! Stochastic gradient descent with momentum and weight decay.

use crate::layer::Param;
use crate::tensor::Tensor;
use crate::Result;

/// SGD optimizer.
///
/// Momentum buffers are keyed by parameter position, so the same parameter
/// list (in the same order) must be passed to every [`Sgd::step`] call —
/// which [`crate::layer::Layer::params_mut`] guarantees for a fixed
/// architecture.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{optim::Sgd, layer::Param, Tensor, Shape};
///
/// let mut p = Param::new(Tensor::full(Shape::new(&[1]), 1.0));
/// p.grad = Tensor::full(Shape::new(&[1]), 0.5);
/// let mut opt = Sgd::new(0.1);
/// opt.step(&mut [&mut p])?;
/// assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
/// # Ok::<(), deepcam_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables decay).
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Builder-style momentum override.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Builder-style weight-decay override.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Applies one update step and clears the gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape errors if a parameter's gradient shape ever
    /// disagrees with its value (which indicates a bug in a layer).
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.velocity.len() < params.len() {
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(Tensor::zeros(p.value.shape().clone()));
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut update = p.grad.clone();
            if self.weight_decay > 0.0 {
                update.axpy(self.weight_decay, &p.value)?;
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.map_inplace(|x| x * self.momentum);
                v.axpy(1.0, &update)?;
                update = v.clone();
            }
            p.value.axpy(-self.lr, &update)?;
            p.zero_grad();
        }
        Ok(())
    }

    /// Zeroes all gradients without updating (useful between accumulation
    /// phases).
    pub fn zero_grad(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn param(v: f32, g: f32) -> Param {
        let mut p = Param::new(Tensor::full(Shape::new(&[1]), v));
        p.grad = Tensor::full(Shape::new(&[1]), g);
        p
    }

    #[test]
    fn plain_sgd_step() {
        let mut p = param(1.0, 2.0);
        let mut opt = Sgd::new(0.5);
        opt.step(&mut [&mut p]).unwrap();
        assert!((p.value.data()[0] - 0.0).abs() < 1e-6);
        assert_eq!(p.grad.data()[0], 0.0); // cleared
    }

    #[test]
    fn momentum_accumulates() {
        let mut p = param(0.0, 1.0);
        let mut opt = Sgd::new(1.0).with_momentum(0.5);
        opt.step(&mut [&mut p]).unwrap(); // v=1, x=-1
        p.grad = Tensor::full(Shape::new(&[1]), 1.0);
        opt.step(&mut [&mut p]).unwrap(); // v=1.5, x=-2.5
        assert!((p.value.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = param(10.0, 0.0);
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        opt.step(&mut [&mut p]).unwrap();
        assert!((p.value.data()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize (x-3)^2 by hand-computed gradient 2(x-3).
        let mut p = param(0.0, 0.0);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..200 {
            let x = p.value.data()[0];
            p.grad = Tensor::full(Shape::new(&[1]), 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-3);
    }
}
