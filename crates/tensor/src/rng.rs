//! Deterministic random-number helpers shared by the whole reproduction.
//!
//! Every stochastic component (weight init, synthetic datasets, projection
//! matrices, device-noise models) is seeded explicitly so experiments are
//! reproducible run-to-run. Gaussian variates come from the Box–Muller
//! transform — `rand` is in the allowed dependency set but `rand_distr` is
//! not, so the normal distribution is implemented here once and reused
//! everywhere.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates the standard deterministic RNG used across the workspace.
///
/// # Example
///
/// ```
/// use deepcam_tensor::rng::seeded_rng;
/// use rand::RngExt;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard-normal variate (mean 0, variance 1) using the
/// Box–Muller transform.
///
/// # Example
///
/// ```
/// use deepcam_tensor::rng::{seeded_rng, standard_normal};
///
/// let mut rng = seeded_rng(1);
/// let z = standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 from (0, 1] so the log never sees zero.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `out` with i.i.d. normal variates of the given mean and standard
/// deviation.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], mean: f32, std_dev: f32) {
    for v in out.iter_mut() {
        *v = mean + std_dev * standard_normal(rng) as f32;
    }
}

/// Fills `out` with i.i.d. uniform variates in `[lo, hi)`.
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], lo: f32, hi: f32) {
    for v in out.iter_mut() {
        *v = rng.random_range(lo..hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_values_are_finite() {
        let mut rng = seeded_rng(3);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn fill_uniform_respects_bounds() {
        let mut rng = seeded_rng(9);
        let mut buf = vec![0.0f32; 1000];
        fill_uniform(&mut rng, &mut buf, -0.5, 0.5);
        assert!(buf.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn fill_normal_scales() {
        let mut rng = seeded_rng(11);
        let mut buf = vec![0.0f32; 50_000];
        fill_normal(&mut rng, &mut buf, 10.0, 2.0);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
