//! Stateful, trainable layers built from the pure ops in [`crate::ops`].
//!
//! The [`Layer`] trait is deliberately minimal — `forward`, `backward`,
//! parameter access — because only the scaled-down accuracy-experiment
//! models are trained in-repo (DESIGN.md §4). The same structures double
//! as the *float reference pipeline* against which `deepcam-core`'s
//! CAM-based inference is compared layer by layer.

use rand::Rng;

use crate::error::TensorError;
use crate::init;
use crate::ops::activation::{relu, relu_backward};
use crate::ops::conv::{conv2d, conv2d_backward, im2col, Conv2dConfig};
use crate::ops::linear::{linear, linear_backward};
use crate::ops::norm::{
    batch_norm2d_backward, batch_norm2d_infer, batch_norm2d_train, BatchNormCache,
};
use crate::ops::pool::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolConfig,
};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// A trainable parameter: a value and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value` (same shape).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

/// A differentiable network layer.
///
/// `forward` caches whatever the subsequent `backward` needs; calling
/// `backward` before `forward` yields
/// [`TensorError::MissingForwardCache`].
pub trait Layer {
    /// Computes the layer output. `train` selects training-mode behaviour
    /// (batch statistics in batch norm).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying op.
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor>;

    /// Backpropagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MissingForwardCache`] when called before
    /// `forward`, or shape errors from the underlying op.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Human-readable layer kind, used in summaries and error messages.
    fn name(&self) -> &'static str;
}

/// 2-D convolution layer with optional bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Convolution geometry.
    pub cfg: Conv2dConfig,
    /// Kernel weights `[M, C, KH, KW]`.
    pub weight: Param,
    /// Bias `[M]`.
    pub bias: Param,
    cached_patches: Option<Tensor>,
    cached_input_shape: Option<Shape>,
}

impl Conv2d {
    /// Creates a He-initialized convolution layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, cfg: Conv2dConfig) -> Self {
        let fan_in = cfg.patch_len();
        let weight = init::he_normal(
            rng,
            Shape::new(&[
                cfg.out_channels,
                cfg.in_channels,
                cfg.kernel_h,
                cfg.kernel_w,
            ]),
            fan_in,
        );
        let bias = Tensor::zeros(Shape::new(&[cfg.out_channels]));
        Conv2d {
            cfg,
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_patches: None,
            cached_input_shape: None,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_patches = Some(im2col(x, &self.cfg)?);
        self.cached_input_shape = Some(x.shape().clone());
        conv2d(x, &self.weight.value, Some(&self.bias.value), &self.cfg)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let patches = self
            .cached_patches
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("Conv2d"))?;
        let in_shape = self
            .cached_input_shape
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("Conv2d"))?;
        let (dx, dw, db) =
            conv2d_backward(grad_out, patches, &self.weight.value, in_shape, &self.cfg)?;
        self.weight.grad.axpy(1.0, &dw)?;
        self.bias.grad.axpy(1.0, &db)?;
        Ok(dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// Fully-connected layer.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights `[F_out, F_in]` (PyTorch layout).
    pub weight: Param,
    /// Bias `[F_out]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a He-initialized dense layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        let weight = init::he_normal(rng, Shape::new(&[out_features, in_features]), in_features);
        Linear {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(Shape::new(&[out_features]))),
            cached_input: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(x.clone());
        linear(x, &self.weight.value, Some(&self.bias.value))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("Linear"))?;
        let (dx, dw, db) = linear_backward(grad_out, x, &self.weight.value)?;
        self.weight.grad.axpy(1.0, &dw)?;
        self.bias.grad.axpy(1.0, &db)?;
        Ok(dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(x.clone());
        Ok(relu(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("ReLU"))?;
        relu_backward(grad_out, x)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Max-pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    /// Window configuration.
    pub cfg: PoolConfig,
    cached_indices: Option<Vec<usize>>,
    cached_input_shape: Option<Shape>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a non-overlapping square window.
    pub fn new(kernel: usize) -> Self {
        MaxPool2d {
            cfg: PoolConfig::new(kernel),
            cached_indices: None,
            cached_input_shape: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let (y, idx) = max_pool2d(x, &self.cfg)?;
        self.cached_indices = Some(idx);
        self.cached_input_shape = Some(x.shape().clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let idx = self
            .cached_indices
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("MaxPool2d"))?;
        let shape = self
            .cached_input_shape
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("MaxPool2d"))?;
        max_pool2d_backward(grad_out, idx, shape)
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Average-pooling layer (window = input for global average pooling).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    /// Window configuration.
    pub cfg: PoolConfig,
    cached_input_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a non-overlapping square window.
    pub fn new(kernel: usize) -> Self {
        AvgPool2d {
            cfg: PoolConfig::new(kernel),
            cached_input_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input_shape = Some(x.shape().clone());
        avg_pool2d(x, &self.cfg)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_input_shape
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("AvgPool2d"))?;
        avg_pool2d_backward(grad_out, shape, &self.cfg)
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Per-channel 2-D batch normalization with running statistics.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Per-channel scale.
    pub gamma: Param,
    /// Per-channel shift.
    pub beta: Param,
    /// Exponential-moving-average mean used at inference.
    pub running_mean: Vec<f32>,
    /// Exponential-moving-average variance used at inference.
    pub running_var: Vec<f32>,
    /// EMA momentum (PyTorch convention: new = (1-m)*old + m*batch).
    pub momentum: f32,
    cache: Option<BatchNormCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(Shape::new(&[channels]), 1.0)),
            beta: Param::new(Tensor::zeros(Shape::new(&[channels]))),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cache: None,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        if train {
            let (y, cache) = batch_norm2d_train(x, &self.gamma.value, &self.beta.value)?;
            for (r, &b) in self.running_mean.iter_mut().zip(cache.mean.iter()) {
                *r = (1.0 - self.momentum) * *r + self.momentum * b;
            }
            for (r, &b) in self.running_var.iter_mut().zip(cache.var.iter()) {
                *r = (1.0 - self.momentum) * *r + self.momentum * b;
            }
            self.cache = Some(cache);
            Ok(y)
        } else {
            batch_norm2d_infer(
                x,
                &self.gamma.value,
                &self.beta.value,
                &self.running_mean,
                &self.running_var,
            )
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("BatchNorm2d"))?;
        let (dx, dgamma, dbeta) = batch_norm2d_backward(grad_out, cache, &self.gamma.value)?;
        self.gamma.grad.axpy(1.0, &dgamma)?;
        self.beta.grad.axpy(1.0, &dbeta)?;
        Ok(dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

/// Flattens NCHW activations to `[N, C*H*W]` for the classifier head.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_shape = Some(x.shape().clone());
        let n = x.shape().dim(0);
        let rest = x.len() / n.max(1);
        x.clone().reshape(Shape::new(&[n, rest]))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("Flatten"))?;
        grad_out.clone().reshape(shape.clone())
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// An ordered stack of layers executed front to back.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{layer::{Linear, ReLU}, rng::seeded_rng, Sequential, Layer, Tensor, Shape};
///
/// let mut rng = seeded_rng(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(&mut rng, 4, 8));
/// net.push(ReLU::new());
/// net.push(Linear::new(&mut rng, 8, 2));
/// let x = Tensor::zeros(Shape::new(&[1, 4]));
/// let y = net.forward(&x, false)?;
/// assert_eq!(y.shape(), &Shape::new(&[1, 2]));
/// # Ok::<(), deepcam_tensor::TensorError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer names in execution order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

/// A residual block: `output = relu(body(x) + shortcut(x))`.
///
/// `shortcut` defaults to the identity; ResNet downsampling blocks install
/// a 1x1 strided convolution (+ batch norm) instead.
#[derive(Default)]
pub struct Residual {
    /// Main branch.
    pub body: Sequential,
    /// Projection branch (`None` = identity).
    pub shortcut: Option<Sequential>,
    cached_sum: Option<Tensor>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Residual {
            body,
            shortcut: None,
            cached_sum: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(body: Sequential, shortcut: Sequential) -> Self {
        Residual {
            body,
            shortcut: Some(shortcut),
            cached_sum: None,
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let main = self.body.forward(x, train)?;
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, train)?,
            None => x.clone(),
        };
        let sum = main.add(&skip)?;
        self.cached_sum = Some(sum.clone());
        Ok(relu(&sum))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let sum = self
            .cached_sum
            .as_ref()
            .ok_or(TensorError::MissingForwardCache("Residual"))?;
        let grad_sum = relu_backward(grad_out, sum)?;
        let grad_main = self.body.backward(&grad_sum)?;
        let grad_skip = match &mut self.shortcut {
            Some(s) => s.backward(&grad_sum)?,
            None => grad_sum,
        };
        grad_main.add(&grad_skip)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.body.params_mut();
        if let Some(s) = &mut self.shortcut {
            p.extend(s.params_mut());
        }
        p
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut rng = seeded_rng(0);
        let mut net = Sequential::new();
        net.push(Conv2d::new(
            &mut rng,
            Conv2dConfig::new(1, 4, 3).with_padding(1),
        ));
        net.push(ReLU::new());
        net.push(MaxPool2d::new(2));
        net.push(Flatten::new());
        net.push(Linear::new(&mut rng, 4 * 4 * 4, 10));
        let x = Tensor::zeros(Shape::new(&[2, 1, 8, 8]));
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[2, 10]));
        let gx = net.backward(&Tensor::full(y.shape().clone(), 1.0)).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = ReLU::new();
        let g = Tensor::zeros(Shape::new(&[1]));
        assert!(matches!(
            r.backward(&g),
            Err(TensorError::MissingForwardCache("ReLU"))
        ));
    }

    #[test]
    fn param_count_counts_everything() {
        let mut rng = seeded_rng(1);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 10, 5)); // 50 + 5
        net.push(BatchNorm2d::new(3)); // 3 + 3
        assert_eq!(net.param_count(), 61);
    }

    #[test]
    fn residual_identity_gradient_splits() {
        // With a zeroed body, the block is relu(x), and the input gradient
        // equals body-gradient + identity-gradient.
        let mut rng = seeded_rng(2);
        let mut body = Sequential::new();
        let mut conv = Conv2d::new(&mut rng, Conv2dConfig::new(2, 2, 3).with_padding(1));
        conv.weight.value.map_inplace(|_| 0.0);
        body.push(conv);
        let mut block = Residual::new(body);
        let x = Tensor::full(Shape::new(&[1, 2, 4, 4]), 1.0);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.data(), x.data());
        let g = block
            .backward(&Tensor::full(x.shape().clone(), 1.0))
            .unwrap();
        assert_eq!(g.shape(), x.shape());
        // Identity path alone passes gradient 1 everywhere (plus the conv
        // path contribution, which is 0 for zero weights).
        assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn residual_projection_shortcut_runs() {
        let mut rng = seeded_rng(3);
        let mut body = Sequential::new();
        body.push(Conv2d::new(
            &mut rng,
            Conv2dConfig::new(2, 4, 3).with_padding(1).with_stride(2),
        ));
        let mut shortcut = Sequential::new();
        shortcut.push(Conv2d::new(
            &mut rng,
            Conv2dConfig::new(2, 4, 1).with_stride(2),
        ));
        let mut block = Residual::with_shortcut(body, shortcut);
        let x = Tensor::full(Shape::new(&[1, 2, 8, 8]), 0.5);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[1, 4, 4, 4]));
        let gx = block
            .backward(&Tensor::full(y.shape().clone(), 1.0))
            .unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn batch_norm_running_stats_update() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(Shape::new(&[2, 1, 2, 2]), 4.0);
        bn.forward(&x, true).unwrap();
        // Batch mean is 4.0, EMA with momentum 0.1 from 0.0 → 0.4.
        assert!((bn.running_mean[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn batch_norm_infer_differs_from_train() {
        let mut rng = seeded_rng(4);
        let mut bn = BatchNorm2d::new(2);
        let x = init::normal(&mut rng, Shape::new(&[4, 2, 3, 3]), 5.0, 2.0);
        let y_train = bn.forward(&x, true).unwrap();
        let y_infer = bn.forward(&x, false).unwrap();
        // Training normalizes to ~0 mean; inference uses barely-updated
        // running stats, so the outputs must differ.
        assert!((y_train.mean() - y_infer.mean()).abs() > 0.1);
    }
}
