//! A small, dependency-free work-stealing thread pool.
//!
//! DeepCAM's speedup claim rests on massive parallelism across CAM
//! sub-arrays and hash chunks; the software reproduction mirrors that by
//! sharding its hot loops (im2col, GEMM channel blocks, patch hashing,
//! CAM row ranges, image batches) across a shared pool of workers. The
//! pool lives here — at the bottom of the crate graph — so every layer
//! (`deepcam-cam`, `deepcam-core`, `deepcam-bench`) can reuse one set of
//! threads instead of spawning per call.
//!
//! # Design
//!
//! * **Work stealing.** Each worker owns a deque; [`Scope::spawn`]
//!   distributes tasks round-robin, a worker drains its own deque first
//!   and then steals from its siblings. No external crates (`rayon`,
//!   `crossbeam`) are used — the container builds fully offline.
//! * **Scoped tasks.** [`ThreadPool::scope`] lets tasks borrow from the
//!   caller's stack (like `std::thread::scope`): the call does not return
//!   until every spawned task has finished, on every exit path.
//! * **Nested-scope safe.** A thread that waits on a scope *helps*: it
//!   pops queued tasks and runs them while waiting. An `infer_batch`
//!   image task can therefore open its own `scope` for patch hashing on
//!   a single-worker pool without deadlocking.
//! * **Determinism.** The pool never changes *what* is computed, only
//!   *where*: callers shard work into chunks whose outputs are disjoint,
//!   so results are bit-identical for every worker count. The
//!   differential suite in `tests/parallel_equivalence.rs` enforces this.
//!
//! # Example
//!
//! ```
//! use deepcam_tensor::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut out = vec![0usize; 8];
//! pool.scope(|s| {
//!     for (i, slot) in out.iter_mut().enumerate() {
//!         s.spawn(move || *slot = i * i);
//!     }
//! });
//! assert_eq!(out[7], 49);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Environment variable overriding the default worker count
/// ([`Parallelism::Auto`]): set `DEEPCAM_WORKERS=4` to pin four workers.
pub const WORKERS_ENV: &str = "DEEPCAM_WORKERS";

/// How much parallelism a component should use.
///
/// This is the single knob threaded through `EngineConfig`, the sharded
/// tensor ops and the experiment binaries. Whatever it resolves to, the
/// computed values are bit-identical — parallelism only changes wall
/// clock, never results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Run strictly on the calling thread.
    Serial,
    /// Use exactly this many workers (values of 0 behave like 1).
    Fixed(usize),
    /// Use `DEEPCAM_WORKERS` if set (and a positive integer), otherwise
    /// all available cores.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always ≥ 1).
    ///
    /// [`Parallelism::Auto`] honors `DEEPCAM_WORKERS` when it holds a
    /// positive integer. An *invalid* value (`0`, `abc`, empty) falls
    /// back to all available cores — loudly: a warning naming the bad
    /// value is printed to stderr once per distinct value, so a typo'd
    /// deployment never silently runs at the wrong width.
    // analyze: allow(determinism, "DEEPCAM_WORKERS only picks the worker count; results are bit-identical at every width")
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                let raw = std::env::var(WORKERS_ENV).ok();
                let (workers, warning) = resolve_auto(raw.as_deref());
                if let Some(msg) = warning {
                    emit_env_warning_once(&msg);
                }
                workers
            }
        }
    }
}

/// The [`Parallelism::Auto`] resolution rule, pure so both outcomes are
/// unit-testable without touching the process environment: returns the
/// worker count plus the warning to emit when `raw` is set but invalid.
// analyze: allow(determinism, "core-count fallback for Auto width; sharding never changes results")
fn resolve_auto(raw: Option<&str>) -> (usize, Option<String>) {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    };
    match raw {
        None => (fallback(), None),
        Some(raw) => match raw.trim().parse::<usize>().ok().filter(|&n| n > 0) {
            Some(n) => (n, None),
            None => (
                fallback(),
                Some(format!(
                    "warning: ignoring invalid {WORKERS_ENV}={raw:?} (expected a positive \
                     integer); falling back to all available cores"
                )),
            ),
        },
    }
}

/// Prints `msg` to stderr the first time it is seen; repeats are
/// swallowed so a hot loop resolving [`Parallelism::Auto`] warns once
/// per distinct bad value, not once per call. Returns whether it
/// printed (the warning path's unit-test hook).
// analyze: allow(determinism, "the loud-misconfiguration warning itself; stderr only, once per bad value")
fn emit_env_warning_once(msg: &str) -> bool {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut seen = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("env warning lock");
    if seen.iter().any(|m| m == msg) {
        return false;
    }
    eprintln!("{msg}");
    seen.push(msg.to_string());
    true
}

impl serde::bin::BinCodec for Parallelism {
    fn encode(&self, w: &mut serde::bin::Writer) {
        match self {
            Parallelism::Serial => w.put_u8(0),
            Parallelism::Fixed(n) => {
                w.put_u8(1);
                w.put_usize(*n);
            }
            Parallelism::Auto => w.put_u8(2),
        }
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(Parallelism::Serial),
            1 => Ok(Parallelism::Fixed(r.get_usize()?)),
            2 => Ok(Parallelism::Auto),
            other => Err(serde::bin::BinError::Invalid(format!(
                "Parallelism tag {other}"
            ))),
        }
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// Tasks pushed but not yet claimed by any thread.
    queued: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_available: Condvar,
    /// One deque per worker; [`Scope::spawn`] round-robins across them
    /// and idle workers steal from their siblings.
    queues: Vec<Mutex<VecDeque<Task>>>,
    round_robin: AtomicUsize,
}

impl Shared {
    fn push(&self, task: Task) {
        let idx = self.round_robin.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[idx]
            .lock()
            .expect("pool queue lock")
            .push_back(task);
        // The counter is incremented only after the task is visible in a
        // deque, so a claimer is always able to find *a* task (not
        // necessarily this one — tasks are interchangeable).
        self.state.lock().expect("pool state lock").queued += 1;
        self.work_available.notify_one();
    }

    /// Claims one queued task if any exists, without blocking.
    fn try_claim(&self, home: usize) -> Option<Task> {
        {
            let mut st = self.state.lock().expect("pool state lock");
            if st.queued == 0 {
                return None;
            }
            st.queued -= 1;
        }
        Some(self.take_claimed(home))
    }

    /// Pops a task after a successful claim. The claim guarantees at
    /// least one task is in some deque, but a racing claimer may grab
    /// the one we spotted first — hence the retry loop.
    fn take_claimed(&self, home: usize) -> Task {
        let n = self.queues.len();
        loop {
            for i in 0..n {
                let q = &self.queues[(home + i) % n];
                if let Some(t) = q.lock().expect("pool queue lock").pop_front() {
                    return t;
                }
            }
            std::hint::spin_loop();
        }
    }

    fn worker_loop(self: &Arc<Self>, home: usize) {
        loop {
            {
                let mut st = self.state.lock().expect("pool state lock");
                loop {
                    if st.queued > 0 {
                        st.queued -= 1;
                        break;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.work_available.wait(st).expect("pool state lock");
                }
            }
            let task = self.take_claimed(home);
            task();
        }
    }
}

/// Tracks the outstanding tasks of one [`ThreadPool::scope`] call.
struct Completion {
    state: Mutex<CompletionState>,
    done: Condvar,
}

struct CompletionState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Completion {
    fn new() -> Self {
        Completion {
            state: Mutex::new(CompletionState {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn add_task(&self) {
        self.state.lock().expect("scope lock").pending += 1;
    }

    fn finish_task(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("scope lock");
        st.pending -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.pending == 0 {
            drop(st);
            self.done.notify_all();
        }
    }

    /// Blocks until every task of this scope has finished, running other
    /// queued pool tasks while waiting (this is what makes nested scopes
    /// on a small pool deadlock-free).
    fn wait_helping(&self, shared: &Shared) {
        loop {
            if self.state.lock().expect("scope lock").pending == 0 {
                return;
            }
            if let Some(task) = shared.try_claim(0) {
                task();
                continue;
            }
            let st = self.state.lock().expect("scope lock");
            if st.pending == 0 {
                return;
            }
            // Short timeout: a task we could help with may be pushed by
            // one of *our* running tasks, which signals `work_available`
            // (a different condvar), so never sleep unboundedly here.
            let _ = self
                .done
                .wait_timeout(st, Duration::from_millis(1))
                .expect("scope lock");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("scope lock").panic.take()
    }
}

/// A fixed-size work-stealing thread pool. See the [module docs](self).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            round_robin: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deepcam-pool-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// The process-wide shared pool.
    ///
    /// Sized on first use to `max(Parallelism::Auto.resolve(), 4)`: at
    /// least four workers are kept even on small machines so that
    /// explicit `Parallelism::Fixed(n ≤ 4)` requests exercise real
    /// concurrency everywhere (results are identical either way).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(Parallelism::Auto.resolve().max(4)))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be
    /// spawned; returns only after every spawned task has finished.
    ///
    /// If a task panics, the panic is re-raised here (the first one, when
    /// several tasks panic). If `f` itself panics, all already-spawned
    /// tasks still run to completion before the panic propagates, so no
    /// task ever outlives the borrows it captured.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let completion = Arc::new(Completion::new());
        let scope = Scope {
            pool: self,
            completion: Arc::clone(&completion),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always drain before returning/unwinding: tasks borrow 'env.
        completion.wait_helping(&self.shared);
        match result {
            Err(panic) => resume_unwind(panic),
            Ok(value) => {
                if let Some(panic) = completion.take_panic() {
                    resume_unwind(panic);
                }
                value
            }
        }
    }

    /// Splits `data` into consecutive `chunk_len`-element chunks and runs
    /// `f(chunk_index, chunk)` for each in parallel. The chunks are
    /// disjoint `&mut` slices, so this cannot introduce write races —
    /// it is the building block behind every sharded op in the crate.
    pub fn run_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        self.scope(|s| {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                s.spawn(move || f(i, chunk));
            }
        });
    }

    /// Runs `f(0), f(1), …, f(n-1)` in parallel and collects the results
    /// in index order (a deterministic reduction regardless of which
    /// worker finishes first).
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(i)));
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("scope ran every task"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state lock").shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    completion: Arc<Completion>,
    /// Invariant over 'env, mirroring `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task that may borrow from the enclosing scope ('env).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.completion.add_task();
        let completion = Arc::clone(&self.completion);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            completion.finish_task(outcome.err());
        });
        // SAFETY: `ThreadPool::scope` blocks (helping) until
        // `completion.pending == 0` on every exit path — including when
        // the scope closure panics — so this task finishes before any
        // 'env borrow it captured goes out of scope. The lifetime is
        // erased only to store the task in the pool's 'static deques.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.shared.push(task);
    }
}

/// Deterministic contiguous split of `n` items into at most `parts`
/// non-empty ranges, as even as possible (the first `n % parts` ranges
/// get one extra item). Every sharded component uses this single
/// function, so chunk boundaries — and therefore behaviour under any
/// future order-sensitive reduction — are identical across the codebase.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallelism_resolves() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Fixed(3).resolve(), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    #[test]
    fn auto_accepts_valid_workers_env() {
        assert_eq!(resolve_auto(Some("4")), (4, None));
        assert_eq!(resolve_auto(Some("  2 ")), (2, None)); // whitespace ok
        let (n, warning) = resolve_auto(None); // unset: all cores, silent
        assert!(n >= 1);
        assert!(warning.is_none());
    }

    #[test]
    fn auto_falls_back_loudly_on_invalid_workers_env() {
        for bad in ["0", "abc", "", " -3", "4.5"] {
            let (n, warning) = resolve_auto(Some(bad));
            // Fallback: same count as an unset variable, never 0.
            assert_eq!(n, resolve_auto(None).0, "value {bad:?}");
            assert!(n >= 1);
            // Warning names the variable and the offending value.
            let msg = warning.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(msg.contains(WORKERS_ENV), "{msg}");
            assert!(msg.contains(&format!("{bad:?}")), "{msg}");
        }
    }

    #[test]
    fn invalid_workers_env_warning_is_one_time_per_value() {
        // First sighting prints, repeats are swallowed; a different bad
        // value gets its own warning.
        let msg_a = "warning: test-only DEEPCAM_WORKERS value \"bogus-a\"";
        let msg_b = "warning: test-only DEEPCAM_WORKERS value \"bogus-b\"";
        assert!(emit_env_warning_once(msg_a));
        assert!(!emit_env_warning_once(msg_a));
        assert!(emit_env_warning_once(msg_b));
        assert!(!emit_env_warning_once(msg_b));
        assert!(!emit_env_warning_once(msg_a));
    }

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn tasks_can_borrow_mutably_via_chunks() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 100];
        pool.run_chunks_mut(&mut data, 7, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 7 + j) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn run_indexed_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.run_indexed(33, |i| i * 2);
        assert_eq!(out, (0..33).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // A 1-worker pool forces the outer task and the inner scope to
        // share a single thread plus the helping waiter.
        let pool = ThreadPool::new(1);
        let total = AtomicU32::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    ThreadPool::global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panic.
        assert_eq!(pool.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn split_ranges_covers_everything() {
        for n in 0..40usize {
            for parts in 1..10usize {
                let ranges = split_ranges(n, parts);
                let mut covered = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, covered, "ranges must be contiguous");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, n);
                if n > 0 {
                    assert!(ranges.len() <= parts);
                }
            }
        }
    }

    #[test]
    fn global_pool_has_at_least_four_workers() {
        assert!(ThreadPool::global().workers() >= 4);
    }
}
