//! Error type shared by all tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Error returned by fallible tensor and layer operations.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{Tensor, Shape, TensorError};
///
/// let err = Tensor::from_vec(vec![1.0], Shape::new(&[2, 2])).unwrap_err();
/// assert!(matches!(err, TensorError::LengthMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape
    /// dimensions.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Shape,
        /// Shape of the right-hand operand.
        rhs: Shape,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An operator was configured with an invalid hyper-parameter
    /// (for example a zero stride or a kernel larger than its padded input).
    InvalidConfig(String),
    /// `backward` was called before `forward` populated the cached
    /// activations required to compute gradients.
    MissingForwardCache(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs} vs rhs {rhs}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} expects rank {expected}, got rank {actual}"),
            TensorError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TensorError::MissingForwardCache(op) => {
                write!(f, "{op}: backward called before forward")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 1,
        };
        assert_eq!(
            e.to_string(),
            "buffer length 1 does not match shape volume 4"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            lhs: Shape::new(&[2, 3]),
            rhs: Shape::new(&[4]),
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::MissingForwardCache("conv"));
        assert!(e.to_string().contains("conv"));
    }
}
