//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The dimensions of a [`crate::Tensor`], row-major (last axis contiguous).
///
/// CNN tensors follow the NCHW convention: `[batch, channels, height,
/// width]`. Fully-connected activations are `[batch, features]`.
///
/// # Example
///
/// ```
/// use deepcam_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4, 4]);
/// assert_eq!(s.volume(), 96);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Shape of a scalar (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// The size of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides, in elements.
    ///
    /// # Example
    ///
    /// ```
    /// use deepcam_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug builds only for the bounds part; the offset itself is
    /// computed regardless).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(
                index[axis] < self.dims[axis],
                "index {} out of bounds for axis {axis} of size {}",
                index[axis],
                self.dims[axis]
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Returns `true` when this is an NCHW (rank 4) shape.
    pub fn is_nchw(&self) -> bool {
        self.rank() == 4
    }

    /// Interprets the shape as `[batch, channels, height, width]`.
    ///
    /// Returns `None` unless the rank is 4.
    pub fn as_nchw(&self) -> Option<(usize, usize, usize, usize)> {
        if self.rank() == 4 {
            Some((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
        } else {
            None
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[4, 3, 8, 8]);
        assert_eq!(s.volume(), 768);
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = vec![false; s.volume()];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(!seen[off], "offset {off} visited twice");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(&[1, 3, 32, 32]);
        assert_eq!(s.as_nchw(), Some((1, 3, 32, 32)));
        assert!(Shape::new(&[10, 5]).as_nchw().is_none());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn from_vec_and_slice() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
