//! Fully-connected (dense) layer math.

use crate::error::TensorError;
use crate::pool::{split_ranges, ThreadPool};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Forward pass: `x [N, F_in] . W^T [F_in, F_out] + b -> [N, F_out]`.
///
/// The weight layout `[F_out, F_in]` matches PyTorch's `nn.Linear`, and —
/// more importantly here — means each *row* of `W` is one output neuron's
/// weight vector, which is exactly the unit that the DeepCAM context
/// generator hashes into one CAM row.
///
/// # Errors
///
/// Returns a shape error if `x` is not rank 2 or the feature dimensions
/// disagree.
pub fn linear(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    validate_linear_inputs(x, weight)?;
    let mut y = x.matmul(&weight.transpose()?)?;
    add_feature_bias(&mut y, bias, weight.shape().dim(0))?;
    Ok(y)
}

/// Shared argument validation for the serial and sharded linear ops.
fn validate_linear_inputs(x: &Tensor, weight: &Tensor) -> Result<()> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.shape().rank(),
            op: "linear",
        });
    }
    if weight.shape().rank() != 2 || weight.shape().dim(1) != x.shape().dim(1) {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: weight.shape().clone(),
            op: "linear",
        });
    }
    Ok(())
}

/// Adds a per-feature bias to an `[N, F_out]` output (shared by the
/// serial and sharded linear ops — one copy, one accumulation order).
fn add_feature_bias(y: &mut Tensor, bias: Option<&Tensor>, f_out: usize) -> Result<()> {
    if let Some(b) = bias {
        if b.len() != f_out {
            return Err(TensorError::ShapeMismatch {
                lhs: b.shape().clone(),
                rhs: Shape::new(&[f_out]),
                op: "linear (bias)",
            });
        }
        let n = y.shape().dim(0);
        for i in 0..n {
            for j in 0..f_out {
                y.data_mut()[i * f_out + j] += b.data()[j];
            }
        }
    }
    Ok(())
}

/// [`linear`] sharded over output features across `workers` pool workers.
///
/// Each worker computes the GEMM block for a contiguous range of output
/// neurons — the per-row unit the DeepCAM context generator hashes into
/// one CAM word. Per-element accumulation order matches the serial GEMM,
/// so the result is **bit-identical** to [`linear`] for every worker
/// count (enforced by `tests/proptests.rs`).
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn linear_sharded(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    workers: usize,
) -> Result<Tensor> {
    if workers <= 1 {
        return linear(x, weight, bias);
    }
    validate_linear_inputs(x, weight)?;
    let n = x.shape().dim(0);
    let f_in = x.shape().dim(1);
    let f_out = weight.shape().dim(0);
    let wdata = weight.data();
    let ranges = split_ranges(f_out, workers);
    let blocks: Vec<Result<Tensor>> = ThreadPool::global().run_indexed(ranges.len(), |bi| {
        let r = &ranges[bi];
        let sub = Tensor::from_vec(
            wdata[r.start * f_in..r.end * f_in].to_vec(),
            Shape::new(&[r.len(), f_in]),
        )?;
        x.matmul(&sub.transpose()?) // [N, r.len()]
    });
    // Deterministic column scatter, then the serial bias loop verbatim.
    let mut out = vec![0.0f32; n * f_out];
    for (r, block) in ranges.iter().zip(blocks) {
        let block = block?;
        let src = block.data();
        let fc = r.len();
        for i in 0..n {
            out[i * f_out + r.start..i * f_out + r.end].copy_from_slice(&src[i * fc..(i + 1) * fc]);
        }
    }
    let mut y = Tensor::from_vec(out, Shape::new(&[n, f_out]))?;
    add_feature_bias(&mut y, bias, f_out)?;
    Ok(y)
}

/// Gradients of [`linear`]: returns `(grad_x, grad_w, grad_b)`.
///
/// # Errors
///
/// Propagates shape errors from the internal GEMMs.
pub fn linear_backward(
    grad_out: &Tensor,
    x: &Tensor,
    weight: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    // grad_x = grad_out . W           [N, F_in]
    // grad_w = grad_out^T . x         [F_out, F_in]
    // grad_b = column sums of grad_out
    let grad_x = grad_out.matmul(weight)?;
    let grad_w = grad_out.transpose()?.matmul(x)?;
    let (n, f_out) = (grad_out.shape().dim(0), grad_out.shape().dim(1));
    let mut gb = vec![0.0f32; f_out];
    for i in 0..n {
        for (g, &go) in gb
            .iter_mut()
            .zip(&grad_out.data()[i * f_out..(i + 1) * f_out])
        {
            *g += go;
        }
    }
    Ok((grad_x, grad_w, Tensor::from_vec(gb, Shape::new(&[f_out]))?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::seeded_rng;

    #[test]
    fn forward_known_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0], Shape::new(&[1, 2])).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], Shape::new(&[3, 2])).unwrap();
        let b = Tensor::from_slice(&[0.0, 0.0, 1.0]);
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    fn forward_rejects_mismatched_features() {
        let x = Tensor::zeros(Shape::new(&[1, 3]));
        let w = Tensor::zeros(Shape::new(&[4, 2]));
        assert!(linear(&x, &w, None).is_err());
        assert!(linear_sharded(&x, &w, None, 4).is_err());
    }

    #[test]
    fn linear_sharded_is_bit_identical() {
        let mut rng = seeded_rng(17);
        let x = init::normal(&mut rng, Shape::new(&[5, 9]), 0.0, 1.0);
        let w = init::normal(&mut rng, Shape::new(&[7, 9]), 0.0, 1.0);
        let b = init::normal(&mut rng, Shape::new(&[7]), 0.0, 1.0);
        let serial = linear(&x, &w, Some(&b)).unwrap();
        for workers in [2usize, 3, 7, 32] {
            let sharded = linear_sharded(&x, &w, Some(&b), workers).unwrap();
            assert_eq!(serial.data(), sharded.data(), "workers {workers}");
        }
        let no_bias_serial = linear(&x, &w, None).unwrap();
        let no_bias = linear_sharded(&x, &w, None, 3).unwrap();
        assert_eq!(no_bias_serial.data(), no_bias.data());
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = seeded_rng(3);
        let x = init::normal(&mut rng, Shape::new(&[4, 5]), 0.0, 1.0);
        let w = init::normal(&mut rng, Shape::new(&[3, 5]), 0.0, 1.0);
        let b = init::normal(&mut rng, Shape::new(&[3]), 0.0, 1.0);
        let go = Tensor::full(Shape::new(&[4, 3]), 1.0);
        let (dx, dw, db) = linear_backward(&go, &x, &w).unwrap();
        let eps = 1e-3;
        let f = |x: &Tensor, w: &Tensor, b: &Tensor| linear(x, w, Some(b)).unwrap().sum();
        for &i in &[0usize, 9, 19] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp, &w, &b) - f(&xm, &w, &b)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2);
        }
        for &i in &[0usize, 7, 14] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (f(&x, &wp, &b) - f(&x, &wm, &b)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2);
        }
        for &g in db.data() {
            assert!((g - 4.0).abs() < 1e-4); // batch of 4, loss=sum
        }
    }
}
