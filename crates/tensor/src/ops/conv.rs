//! 2-D convolution via im2col/col2im.
//!
//! The im2col transform is load-bearing for the whole reproduction: the
//! DeepCAM context generator (paper Fig. 4) reshapes each convolution into
//! a set of patch vectors, computes an L2 norm and a hashed binary vector
//! per patch, and stores those *contexts* in the CAM. Keeping a single
//! im2col implementation here guarantees that the functional CAM inference
//! in `deepcam-core` sees exactly the same patch geometry as the reference
//! float convolution.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::pool::{split_ranges, ThreadPool};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Hyper-parameters of a 2-D convolution.
///
/// # Example
///
/// ```
/// use deepcam_tensor::ops::Conv2dConfig;
///
/// let cfg = Conv2dConfig::new(3, 16, 3).with_stride(1).with_padding(1);
/// assert_eq!(cfg.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dConfig {
    /// Input channels `C`.
    pub in_channels: usize,
    /// Output channels (number of kernels) `M`.
    pub out_channels: usize,
    /// Kernel height `KH`.
    pub kernel_h: usize,
    /// Kernel width `KW`.
    pub kernel_w: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dConfig {
    /// Creates a square-kernel configuration with stride 1 and no padding.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Conv2dConfig {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: 0,
        }
    }

    /// Builder-style stride override.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Builder-style padding override.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Length of one im2col patch vector: `C * KH * KW`.
    ///
    /// This is the dimensionality `n` that the DeepCAM context generator
    /// hashes down to `k` bits.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel_h && pw >= self.kernel_w,
            "kernel {}x{} does not fit padded input {}x{}",
            self.kernel_h,
            self.kernel_w,
            ph,
            pw
        );
        (
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        )
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConfig`] for a zero stride, zero
    /// kernel, or zero channel count.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConfig("conv stride must be > 0".into()));
        }
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidConfig("conv kernel must be > 0".into()));
        }
        if self.in_channels == 0 || self.out_channels == 0 {
            return Err(TensorError::InvalidConfig(
                "conv channel counts must be > 0".into(),
            ));
        }
        Ok(())
    }
}

impl serde::bin::BinCodec for Conv2dConfig {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_usize(self.in_channels);
        w.put_usize(self.out_channels);
        w.put_usize(self.kernel_h);
        w.put_usize(self.kernel_w);
        w.put_usize(self.stride);
        w.put_usize(self.padding);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        let cfg = Conv2dConfig {
            in_channels: r.get_usize()?,
            out_channels: r.get_usize()?,
            kernel_h: r.get_usize()?,
            kernel_w: r.get_usize()?,
            stride: r.get_usize()?,
            padding: r.get_usize()?,
        };
        cfg.validate()
            .map_err(|e| serde::bin::BinError::Invalid(format!("conv config: {e}")))?;
        Ok(cfg)
    }
}

/// Unfolds an NCHW input into patch rows.
///
/// Output shape: `[N * OH * OW, C * KH * KW]`. Row `n * OH * OW + oh * OW +
/// ow` holds the receptive field feeding output position `(oh, ow)` of
/// batch item `n`, channel-major (all of channel 0's window first), which
/// matches the kernel layout `[M, C, KH, KW]` flattened per kernel.
///
/// # Errors
///
/// Returns an error if `input` is not rank 4, the channel count disagrees
/// with `cfg`, or `cfg` itself is invalid.
pub fn im2col(input: &Tensor, cfg: &Conv2dConfig) -> Result<Tensor> {
    im2col_sharded(input, cfg, 1)
}

/// Fills `out` (the slices for patch rows `row_start..row_start + len`)
/// with the im2col expansion of those rows. Each row depends only on the
/// input, so any partition of the row space reproduces [`im2col`] exactly.
#[allow(clippy::too_many_arguments)]
fn im2col_rows(
    x: &[f32],
    cfg: &Conv2dConfig,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    row_start: usize,
    out: &mut [f32],
) {
    let patch = cfg.patch_len();
    let pad = cfg.padding as isize;
    let rows_here = out.len() / patch;
    for local in 0..rows_here {
        let row = row_start + local;
        let ni = row / (oh * ow);
        let ohi = (row / ow) % oh;
        let owi = row % ow;
        let base = local * patch;
        let ih0 = (ohi * cfg.stride) as isize - pad;
        let iw0 = (owi * cfg.stride) as isize - pad;
        let mut col = 0;
        for ci in 0..c {
            let chan_base = (ni * c + ci) * h * w;
            for kh in 0..cfg.kernel_h {
                let ih = ih0 + kh as isize;
                for kw in 0..cfg.kernel_w {
                    let iw = iw0 + kw as isize;
                    if ih >= 0 && (ih as usize) < h && iw >= 0 && (iw as usize) < w {
                        out[base + col] = x[chan_base + ih as usize * w + iw as usize];
                    }
                    col += 1;
                }
            }
        }
    }
}

/// [`im2col`] sharded over patch rows across `workers` pool workers.
///
/// Bit-identical to the serial transform for every worker count: each
/// output row is pure data movement from the input, written exactly once.
///
/// # Errors
///
/// Same conditions as [`im2col`].
pub fn im2col_sharded(input: &Tensor, cfg: &Conv2dConfig, workers: usize) -> Result<Tensor> {
    cfg.validate()?;
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input.shape().rank(),
        op: "im2col",
    })?;
    if c != cfg.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().clone(),
            rhs: Shape::new(&[cfg.in_channels]),
            op: "im2col (channels)",
        });
    }
    let (oh, ow) = cfg.output_hw(h, w);
    let patch = cfg.patch_len();
    let rows = n * oh * ow;
    let mut out = vec![0.0f32; rows * patch];
    let x = input.data();
    if workers <= 1 || rows <= 1 {
        im2col_rows(x, cfg, c, h, w, oh, ow, 0, &mut out);
    } else {
        let chunk_rows = rows.div_ceil(workers.min(rows));
        ThreadPool::global().run_chunks_mut(&mut out, chunk_rows * patch, |ci, chunk| {
            im2col_rows(x, cfg, c, h, w, oh, ow, ci * chunk_rows, chunk);
        });
    }
    Tensor::from_vec(out, Shape::new(&[rows, patch]))
}

/// Folds patch-row gradients back onto the input (the adjoint of
/// [`im2col`]). Overlapping windows accumulate.
///
/// # Errors
///
/// Returns an error if `cols` does not have the shape produced by
/// [`im2col`] for the given input geometry.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    cfg: &Conv2dConfig,
) -> Result<Tensor> {
    cfg.validate()?;
    let (oh, ow) = cfg.output_hw(h, w);
    let patch = cfg.patch_len();
    let rows = n * oh * ow;
    if cols.shape() != &Shape::new(&[rows, patch]) {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().clone(),
            rhs: Shape::new(&[rows, patch]),
            op: "col2im",
        });
    }
    let mut out = vec![0.0f32; n * c * h * w];
    let g = cols.data();
    let pad = cfg.padding as isize;
    for ni in 0..n {
        for ohi in 0..oh {
            for owi in 0..ow {
                let row = ni * oh * ow + ohi * ow + owi;
                let base = row * patch;
                let ih0 = (ohi * cfg.stride) as isize - pad;
                let iw0 = (owi * cfg.stride) as isize - pad;
                let mut col = 0;
                for ci in 0..c {
                    let chan_base = (ni * c + ci) * h * w;
                    for kh in 0..cfg.kernel_h {
                        let ih = ih0 + kh as isize;
                        for kw in 0..cfg.kernel_w {
                            let iw = iw0 + kw as isize;
                            if ih >= 0 && (ih as usize) < h && iw >= 0 && (iw as usize) < w {
                                out[chan_base + ih as usize * w + iw as usize] += g[base + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::new(&[n, c, h, w]))
}

/// Reference float convolution: `input [N,C,H,W] * weight [M,C,KH,KW] +
/// bias [M] -> [N,M,OH,OW]`.
///
/// Implemented as im2col followed by a GEMM, which is also how the DeepCAM
/// context generator decomposes the layer.
///
/// # Errors
///
/// Propagates shape errors from [`im2col`] and the GEMM, and rejects a
/// weight tensor whose shape disagrees with `cfg`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: &Conv2dConfig,
) -> Result<Tensor> {
    let (n, h, w) = validate_conv2d_inputs(input, weight, cfg)?;
    let (oh, ow) = cfg.output_hw(h, w);
    let patches = im2col(input, cfg)?; // [N*P, CKK]
    let wmat = weight
        .clone()
        .reshape(Shape::new(&[cfg.out_channels, cfg.patch_len()]))?;
    // [N*P, M]
    let out2d = patches.matmul(&wmat.transpose()?)?;
    // Permute [N*P, M] -> [N, M, OH, OW].
    let p = oh * ow;
    let m = cfg.out_channels;
    let mut out = vec![0.0f32; n * m * p];
    let src = out2d.data();
    for ni in 0..n {
        for pi in 0..p {
            let row = (ni * p + pi) * m;
            for mi in 0..m {
                out[(ni * m + mi) * p + pi] = src[row + mi];
            }
        }
    }
    add_channel_bias(&mut out, bias, n, m, p)?;
    Tensor::from_vec(out, Shape::new(&[n, m, oh, ow]))
}

/// Shared argument validation for the serial and sharded convolutions:
/// weight shape against `cfg`, input rank. Returns `(N, H, W)`.
fn validate_conv2d_inputs(
    input: &Tensor,
    weight: &Tensor,
    cfg: &Conv2dConfig,
) -> Result<(usize, usize, usize)> {
    let expected_w = Shape::new(&[
        cfg.out_channels,
        cfg.in_channels,
        cfg.kernel_h,
        cfg.kernel_w,
    ]);
    if weight.shape() != &expected_w {
        return Err(TensorError::ShapeMismatch {
            lhs: weight.shape().clone(),
            rhs: expected_w,
            op: "conv2d (weight)",
        });
    }
    let (n, _c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input.shape().rank(),
        op: "conv2d",
    })?;
    Ok((n, h, w))
}

/// Adds a per-channel bias to an `[N, M, P]`-layout buffer (shared by the
/// serial and sharded convolutions — one copy, one accumulation order).
fn add_channel_bias(
    out: &mut [f32],
    bias: Option<&Tensor>,
    n: usize,
    m: usize,
    p: usize,
) -> Result<()> {
    if let Some(b) = bias {
        if b.len() != m {
            return Err(TensorError::ShapeMismatch {
                lhs: b.shape().clone(),
                rhs: Shape::new(&[m]),
                op: "conv2d (bias)",
            });
        }
        for ni in 0..n {
            for mi in 0..m {
                let bv = b.data()[mi];
                for v in &mut out[(ni * m + mi) * p..(ni * m + mi + 1) * p] {
                    *v += bv;
                }
            }
        }
    }
    Ok(())
}

/// [`conv2d`] sharded over output channels across `workers` pool workers.
///
/// Each worker computes the GEMM block for a contiguous range of output
/// channels (the per-kernel unit DeepCAM maps onto CAM rows); the im2col
/// expansion is sharded over patch rows. Per-element accumulation order
/// is identical to the serial GEMM, so the result is **bit-identical** to
/// [`conv2d`] for every worker count — enforced by the property suite in
/// `tests/proptests.rs`.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_sharded(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: &Conv2dConfig,
    workers: usize,
) -> Result<Tensor> {
    if workers <= 1 {
        return conv2d(input, weight, bias, cfg);
    }
    let (n, h, w) = validate_conv2d_inputs(input, weight, cfg)?;
    let (oh, ow) = cfg.output_hw(h, w);
    let patches = im2col_sharded(input, cfg, workers)?; // [N*P, CKK]
    let m = cfg.out_channels;
    let patch = cfg.patch_len();
    let wdata = weight.data();
    // One GEMM block per contiguous channel range. Every block row is an
    // unchanged row of the weight matrix, so each output element runs the
    // exact serial accumulation loop.
    let ranges = split_ranges(m, workers);
    let blocks: Vec<Result<Tensor>> = ThreadPool::global().run_indexed(ranges.len(), |bi| {
        let r = &ranges[bi];
        let sub = Tensor::from_vec(
            wdata[r.start * patch..r.end * patch].to_vec(),
            Shape::new(&[r.len(), patch]),
        )?;
        patches.matmul(&sub.transpose()?) // [N*P, r.len()]
    });
    // Deterministic (serial) scatter [N*P, m_block] -> [N, M, OH, OW],
    // mirroring the serial permute + bias loops exactly.
    let p = oh * ow;
    let mut out = vec![0.0f32; n * m * p];
    for (r, block) in ranges.iter().zip(blocks) {
        let block = block?;
        let src = block.data();
        let mc = r.len();
        for ni in 0..n {
            for pi in 0..p {
                let row = (ni * p + pi) * mc;
                for (j, mi) in (r.start..r.end).enumerate() {
                    out[(ni * m + mi) * p + pi] = src[row + j];
                }
            }
        }
    }
    add_channel_bias(&mut out, bias, n, m, p)?;
    Tensor::from_vec(out, Shape::new(&[n, m, oh, ow]))
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
///
/// `grad_out` has shape `[N, M, OH, OW]`; `patches` is the im2col matrix
/// cached from the forward pass. Returns `(grad_input, grad_weight,
/// grad_bias)`.
///
/// # Errors
///
/// Propagates shape errors from the internal GEMMs and [`col2im`].
pub fn conv2d_backward(
    grad_out: &Tensor,
    patches: &Tensor,
    weight: &Tensor,
    input_shape: &Shape,
    cfg: &Conv2dConfig,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = input_shape.as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input_shape.rank(),
        op: "conv2d_backward",
    })?;
    let (oh, ow) = cfg.output_hw(h, w);
    let p = oh * ow;
    let m = cfg.out_channels;
    // Permute grad_out [N, M, OH, OW] -> [N*P, M] matching forward ordering.
    let g = grad_out.data();
    let mut g2d = vec![0.0f32; n * p * m];
    for ni in 0..n {
        for mi in 0..m {
            for pi in 0..p {
                g2d[(ni * p + pi) * m + mi] = g[(ni * m + mi) * p + pi];
            }
        }
    }
    let g2d = Tensor::from_vec(g2d, Shape::new(&[n * p, m]))?;
    // dW = g2d^T . patches -> [M, CKK]
    let dw2d = g2d.transpose()?.matmul(patches)?;
    let dw = dw2d.reshape(Shape::new(&[m, c, cfg.kernel_h, cfg.kernel_w]))?;
    // db = column sums of g2d
    let mut db = vec![0.0f32; m];
    for row in 0..n * p {
        for (d, &g) in db.iter_mut().zip(&g2d.data()[row * m..(row + 1) * m]) {
            *d += g;
        }
    }
    let db = Tensor::from_vec(db, Shape::new(&[m]))?;
    // dpatches = g2d . W2d -> [N*P, CKK]
    let wmat = weight.clone().reshape(Shape::new(&[m, cfg.patch_len()]))?;
    let dpatches = g2d.matmul(&wmat)?;
    let dinput = col2im(&dpatches, n, c, h, w, cfg)?;
    Ok((dinput, dw, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::seeded_rng;

    fn small_input() -> Tensor {
        // 1x1x4x4 ramp.
        Tensor::from_vec(
            (0..16).map(|i| i as f32).collect(),
            Shape::new(&[1, 1, 4, 4]),
        )
        .unwrap()
    }

    #[test]
    fn output_hw_examples() {
        let c = Conv2dConfig::new(1, 6, 5);
        assert_eq!(c.output_hw(32, 32), (28, 28)); // LeNet conv1
        let c = Conv2dConfig::new(3, 64, 3).with_padding(1);
        assert_eq!(c.output_hw(32, 32), (32, 32)); // VGG conv
        let c = Conv2dConfig::new(64, 128, 3).with_padding(1).with_stride(2);
        assert_eq!(c.output_hw(32, 32), (16, 16)); // ResNet downsample
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(Conv2dConfig::new(1, 1, 0).validate().is_err());
        assert!(Conv2dConfig::new(0, 1, 3).validate().is_err());
        let mut c = Conv2dConfig::new(1, 1, 3);
        c.stride = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn im2col_shape_and_content() {
        let cfg = Conv2dConfig::new(1, 1, 2);
        let cols = im2col(&small_input(), &cfg).unwrap();
        // 3x3 output positions, 4-element patches.
        assert_eq!(cols.shape(), &Shape::new(&[9, 4]));
        // First patch is the top-left 2x2 window of the ramp.
        assert_eq!(&cols.data()[0..4], &[0.0, 1.0, 4.0, 5.0]);
        // Last patch is the bottom-right window.
        assert_eq!(&cols.data()[32..36], &[10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let cfg = Conv2dConfig::new(1, 1, 3).with_padding(1);
        let cols = im2col(&small_input(), &cfg).unwrap();
        assert_eq!(cols.shape(), &Shape::new(&[16, 9]));
        // Patch at (0,0): top row and left column fall in the padding.
        assert_eq!(
            &cols.data()[0..9],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 4.0, 5.0]
        );
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input.
        let cfg = Conv2dConfig::new(1, 1, 1);
        let w = Tensor::full(Shape::new(&[1, 1, 1, 1]), 1.0);
        let x = small_input();
        let y = conv2d(&x, &w, None, &cfg).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_known_values() {
        // Sum-pooling kernel: all-ones 2x2, no bias.
        let cfg = Conv2dConfig::new(1, 1, 2);
        let w = Tensor::full(Shape::new(&[1, 1, 2, 2]), 1.0);
        let y = conv2d(&small_input(), &w, None, &cfg).unwrap();
        // (0+1+4+5) = 10 at the first position.
        assert_eq!(y.data()[0], 10.0);
        assert_eq!(y.shape(), &Shape::new(&[1, 1, 3, 3]));
    }

    #[test]
    fn conv2d_bias_broadcast() {
        let cfg = Conv2dConfig::new(1, 2, 1);
        let w = Tensor::from_vec(vec![1.0, 2.0], Shape::new(&[2, 1, 1, 1])).unwrap();
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let y = conv2d(&small_input(), &w, Some(&b), &cfg).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]), 10.0);
        assert_eq!(y.at(&[0, 1, 0, 0]), 20.0);
        assert_eq!(y.at(&[0, 1, 3, 3]), 2.0 * 15.0 + 20.0);
    }

    #[test]
    fn conv2d_multichannel_matches_direct() {
        // Compare the im2col GEMM path against a naive direct convolution.
        let mut rng = seeded_rng(42);
        let x = init::normal(&mut rng, Shape::new(&[2, 3, 6, 6]), 0.0, 1.0);
        let cfg = Conv2dConfig::new(3, 4, 3).with_padding(1).with_stride(2);
        let w = init::normal(&mut rng, Shape::new(&[4, 3, 3, 3]), 0.0, 1.0);
        let b = init::normal(&mut rng, Shape::new(&[4]), 0.0, 1.0);
        let y = conv2d(&x, &w, Some(&b), &cfg).unwrap();
        let (oh, ow) = cfg.output_hw(6, 6);
        for n in 0..2 {
            for m in 0..4 {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut acc = b.data()[m];
                        for c in 0..3 {
                            for kh in 0..3 {
                                for kw in 0..3 {
                                    let ih = (ohi * 2 + kh) as isize - 1;
                                    let iw = (owi * 2 + kw) as isize - 1;
                                    if (0..6).contains(&ih) && (0..6).contains(&iw) {
                                        acc += x.at(&[n, c, ih as usize, iw as usize])
                                            * w.at(&[m, c, kh, kw]);
                                    }
                                }
                            }
                        }
                        let got = y.at(&[n, m, ohi, owi]);
                        assert!(
                            (got - acc).abs() < 1e-4,
                            "mismatch at {n},{m},{ohi},{owi}: {got} vs {acc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let mut rng = seeded_rng(7);
        let cfg = Conv2dConfig::new(2, 1, 3).with_padding(1).with_stride(2);
        let x = init::normal(&mut rng, Shape::new(&[1, 2, 5, 5]), 0.0, 1.0);
        let cols = im2col(&x, &cfg).unwrap();
        let y = init::normal(&mut rng, cols.shape().clone(), 0.0, 1.0);
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, 1, 2, 5, 5, &cfg).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_backward_matches_numeric_gradient() {
        let mut rng = seeded_rng(11);
        let cfg = Conv2dConfig::new(2, 3, 3).with_padding(1);
        let x = init::normal(&mut rng, Shape::new(&[1, 2, 4, 4]), 0.0, 1.0);
        let w = init::normal(&mut rng, Shape::new(&[3, 2, 3, 3]), 0.0, 0.5);
        let b = init::normal(&mut rng, Shape::new(&[3]), 0.0, 0.5);
        // Loss = sum of outputs, so grad_out = ones.
        let y = conv2d(&x, &w, Some(&b), &cfg).unwrap();
        let go = Tensor::full(y.shape().clone(), 1.0);
        let patches = im2col(&x, &cfg).unwrap();
        let (dx, dw, db) = conv2d_backward(&go, &patches, &w, x.shape(), &cfg).unwrap();

        let eps = 1e-3;
        // Spot-check a few coordinates of each gradient numerically.
        for &idx in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = conv2d(&xp, &w, Some(&b), &cfg).unwrap().sum();
            let fm = conv2d(&xm, &w, Some(&b), &cfg).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}]: {num} vs {}",
                dx.data()[idx]
            );
        }
        for &idx in &[0usize, 10, 20, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fp = conv2d(&x, &wp, Some(&b), &cfg).unwrap().sum();
            let fm = conv2d(&x, &wm, Some(&b), &cfg).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dw[{idx}]: {num} vs {}",
                dw.data()[idx]
            );
        }
        // Bias gradient for loss=sum is the number of output positions.
        let p = y.len() as f32 / 3.0;
        for &g in db.data() {
            assert!((g - p).abs() < 1e-3);
        }
    }

    #[test]
    fn conv2d_rejects_wrong_weight_shape() {
        let cfg = Conv2dConfig::new(1, 1, 3);
        let w = Tensor::zeros(Shape::new(&[1, 1, 2, 2]));
        assert!(conv2d(&small_input(), &w, None, &cfg).is_err());
        assert!(conv2d_sharded(&small_input(), &w, None, &cfg, 4).is_err());
    }

    #[test]
    fn im2col_sharded_is_bit_identical() {
        let mut rng = seeded_rng(21);
        let cfg = Conv2dConfig::new(3, 4, 3).with_padding(1).with_stride(2);
        let x = init::normal(&mut rng, Shape::new(&[2, 3, 7, 7]), 0.0, 1.0);
        let serial = im2col(&x, &cfg).unwrap();
        for workers in [2usize, 3, 8, 64] {
            let sharded = im2col_sharded(&x, &cfg, workers).unwrap();
            assert_eq!(serial.data(), sharded.data(), "workers {workers}");
        }
    }

    #[test]
    fn conv2d_sharded_is_bit_identical() {
        let mut rng = seeded_rng(22);
        let cfg = Conv2dConfig::new(2, 5, 3).with_padding(1);
        let x = init::normal(&mut rng, Shape::new(&[2, 2, 6, 6]), 0.0, 1.0);
        let w = init::normal(&mut rng, Shape::new(&[5, 2, 3, 3]), 0.0, 1.0);
        let b = init::normal(&mut rng, Shape::new(&[5]), 0.0, 1.0);
        let serial = conv2d(&x, &w, Some(&b), &cfg).unwrap();
        for workers in [2usize, 3, 5, 16] {
            let sharded = conv2d_sharded(&x, &w, Some(&b), &cfg, workers).unwrap();
            assert_eq!(serial.data(), sharded.data(), "workers {workers}");
        }
        // More shards than channels must also work.
        let no_bias_serial = conv2d(&x, &w, None, &cfg).unwrap();
        let no_bias = conv2d_sharded(&x, &w, None, &cfg, 16).unwrap();
        assert_eq!(no_bias_serial.data(), no_bias.data());
    }
}
