//! Max and average pooling.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Pooling window configuration.
///
/// # Example
///
/// ```
/// use deepcam_tensor::ops::PoolConfig;
///
/// let p = PoolConfig::new(2); // 2x2 window, stride 2
/// assert_eq!(p.output_hw(28, 28), (14, 14));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Window size (square).
    pub kernel: usize,
    /// Stride; defaults to `kernel` (non-overlapping windows).
    pub stride: usize,
}

impl PoolConfig {
    /// Non-overlapping square window of size `kernel`.
    pub fn new(kernel: usize) -> Self {
        PoolConfig {
            kernel,
            stride: kernel,
        }
    }

    /// Output spatial size for an `h x w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }

    /// Validates the configuration against an input size.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConfig`] for zero kernel/stride or a
    /// window larger than the input.
    pub fn validate(&self, h: usize, w: usize) -> Result<()> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::InvalidConfig(
                "pool kernel and stride must be > 0".into(),
            ));
        }
        if self.kernel > h || self.kernel > w {
            return Err(TensorError::InvalidConfig(format!(
                "pool window {} exceeds input {h}x{w}",
                self.kernel
            )));
        }
        Ok(())
    }
}

impl serde::bin::BinCodec for PoolConfig {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_usize(self.kernel);
        w.put_usize(self.stride);
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        let cfg = PoolConfig {
            kernel: r.get_usize()?,
            stride: r.get_usize()?,
        };
        if cfg.kernel == 0 || cfg.stride == 0 {
            return Err(serde::bin::BinError::Invalid(
                "pool kernel and stride must be > 0".into(),
            ));
        }
        Ok(cfg)
    }
}

/// Max pooling. Returns the pooled tensor and the flat argmax index of each
/// window (needed by [`max_pool2d_backward`]).
///
/// # Errors
///
/// Returns an error for non-NCHW input or an invalid window.
pub fn max_pool2d(input: &Tensor, cfg: &PoolConfig) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input.shape().rank(),
        op: "max_pool2d",
    })?;
    cfg.validate(h, w)?;
    let (oh, ow) = cfg.output_hw(h, w);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    let x = input.data();
    for nc in 0..n * c {
        let base = nc * h * w;
        for ohi in 0..oh {
            for owi in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_at = 0;
                for kh in 0..cfg.kernel {
                    for kw in 0..cfg.kernel {
                        let ih = ohi * cfg.stride + kh;
                        let iw = owi * cfg.stride + kw;
                        let v = x[base + ih * w + iw];
                        if v > best {
                            best = v;
                            best_at = base + ih * w + iw;
                        }
                    }
                }
                let o = nc * oh * ow + ohi * ow + owi;
                out[o] = best;
                idx[o] = best_at;
            }
        }
    }
    Ok((Tensor::from_vec(out, Shape::new(&[n, c, oh, ow]))?, idx))
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input element that won its window.
///
/// # Errors
///
/// Returns an error when `grad_out` volume disagrees with `indices`.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    indices: &[usize],
    input_shape: &Shape,
) -> Result<Tensor> {
    if grad_out.len() != indices.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.len(),
            actual: grad_out.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_shape.clone());
    for (g, &i) in grad_out.data().iter().zip(indices.iter()) {
        grad_in.data_mut()[i] += g;
    }
    Ok(grad_in)
}

/// Average pooling.
///
/// # Errors
///
/// Returns an error for non-NCHW input or an invalid window.
pub fn avg_pool2d(input: &Tensor, cfg: &PoolConfig) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input.shape().rank(),
        op: "avg_pool2d",
    })?;
    cfg.validate(h, w)?;
    let (oh, ow) = cfg.output_hw(h, w);
    let norm = 1.0 / (cfg.kernel * cfg.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let x = input.data();
    for nc in 0..n * c {
        let base = nc * h * w;
        for ohi in 0..oh {
            for owi in 0..ow {
                let mut acc = 0.0;
                for kh in 0..cfg.kernel {
                    for kw in 0..cfg.kernel {
                        acc += x[base + (ohi * cfg.stride + kh) * w + owi * cfg.stride + kw];
                    }
                }
                out[nc * oh * ow + ohi * ow + owi] = acc * norm;
            }
        }
    }
    Tensor::from_vec(out, Shape::new(&[n, c, oh, ow]))
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with the configuration.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: &Shape,
    cfg: &PoolConfig,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: input_shape.rank(),
        op: "avg_pool2d_backward",
    })?;
    let (oh, ow) = cfg.output_hw(h, w);
    if grad_out.shape() != &Shape::new(&[n, c, oh, ow]) {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: Shape::new(&[n, c, oh, ow]),
            op: "avg_pool2d_backward",
        });
    }
    let norm = 1.0 / (cfg.kernel * cfg.kernel) as f32;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let g = grad_out.data();
    for nc in 0..n * c {
        let base = nc * h * w;
        for ohi in 0..oh {
            for owi in 0..ow {
                let gv = g[nc * oh * ow + ohi * ow + owi] * norm;
                for kh in 0..cfg.kernel {
                    for kw in 0..cfg.kernel {
                        grad_in.data_mut()
                            [base + (ohi * cfg.stride + kh) * w + owi * cfg.stride + kw] += gv;
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            (0..n * c * h * w).map(|i| i as f32).collect(),
            Shape::new(&[n, c, h, w]),
        )
        .unwrap()
    }

    #[test]
    fn max_pool_values_and_indices() {
        let x = ramp(1, 1, 4, 4);
        let (y, idx) = max_pool2d(&x, &PoolConfig::new(2)).unwrap();
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(idx, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_gradient() {
        let x = ramp(1, 1, 4, 4);
        let (y, idx) = max_pool2d(&x, &PoolConfig::new(2)).unwrap();
        let go = Tensor::full(y.shape().clone(), 1.0);
        let gi = max_pool2d_backward(&go, &idx, x.shape()).unwrap();
        assert_eq!(gi.sum(), 4.0);
        assert_eq!(gi.data()[5], 1.0);
        assert_eq!(gi.data()[0], 0.0);
    }

    #[test]
    fn avg_pool_values() {
        let x = ramp(1, 1, 4, 4);
        let y = avg_pool2d(&x, &PoolConfig::new(2)).unwrap();
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_conserves_gradient() {
        let x = ramp(1, 2, 4, 4);
        let cfg = PoolConfig::new(2);
        let y = avg_pool2d(&x, &cfg).unwrap();
        let go = Tensor::full(y.shape().clone(), 1.0);
        let gi = avg_pool2d_backward(&go, x.shape(), &cfg).unwrap();
        assert!((gi.sum() - go.sum()).abs() < 1e-5);
        assert!(gi.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool() {
        // ResNet18 ends with a global average pool; window == input size.
        let x = ramp(1, 2, 4, 4);
        let y = avg_pool2d(&x, &PoolConfig::new(4)).unwrap();
        assert_eq!(y.shape(), &Shape::new(&[1, 2, 1, 1]));
        assert_eq!(y.data()[0], 7.5); // mean of 0..16
    }

    #[test]
    fn rejects_oversized_window() {
        let x = ramp(1, 1, 2, 2);
        assert!(max_pool2d(&x, &PoolConfig::new(3)).is_err());
    }
}
