//! Batch normalization (2-D, per-channel).

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Numerical floor added to the variance before the square root.
pub const BN_EPS: f32 = 1e-5;

/// Intermediate values cached by [`batch_norm2d_train`] for the backward
/// pass.
#[derive(Debug, Clone)]
pub struct BatchNormCache {
    /// Normalized activations `x_hat`.
    pub x_hat: Tensor,
    /// Per-channel `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
    /// Per-channel batch mean (also used to update running stats).
    pub mean: Vec<f32>,
    /// Per-channel batch variance (biased).
    pub var: Vec<f32>,
}

fn check_nchw(x: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    x.shape().as_nchw().ok_or(TensorError::RankMismatch {
        expected: 4,
        actual: x.shape().rank(),
        op,
    })
}

/// Training-mode batch norm: normalizes with batch statistics and returns
/// the cache needed for backprop.
///
/// `gamma` and `beta` are per-channel scale and shift (`[C]`).
///
/// # Errors
///
/// Returns an error for non-NCHW input or mis-sized `gamma`/`beta`.
pub fn batch_norm2d_train(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
) -> Result<(Tensor, BatchNormCache)> {
    let (n, c, h, w) = check_nchw(x, "batch_norm2d")?;
    if gamma.len() != c || beta.len() != c {
        return Err(TensorError::ShapeMismatch {
            lhs: gamma.shape().clone(),
            rhs: Shape::new(&[c]),
            op: "batch_norm2d (params)",
        });
    }
    let count = (n * h * w) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    let data = x.data();
    for ni in 0..n {
        for (ci, m) in mean.iter_mut().enumerate() {
            let base = (ni * c + ci) * h * w;
            for &v in &data[base..base + h * w] {
                *m += v;
            }
        }
    }
    for m in &mut mean {
        *m /= count;
    }
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for &v in &data[base..base + h * w] {
                let d = v - mean[ci];
                var[ci] += d * d;
            }
        }
    }
    for v in &mut var {
        *v /= count;
    }
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
    let mut x_hat = vec![0.0f32; data.len()];
    let mut out = vec![0.0f32; data.len()];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let (g, b) = (gamma.data()[ci], beta.data()[ci]);
            for i in base..base + h * w {
                let xh = (data[i] - mean[ci]) * inv_std[ci];
                x_hat[i] = xh;
                out[i] = g * xh + b;
            }
        }
    }
    let shape = x.shape().clone();
    Ok((
        Tensor::from_vec(out, shape.clone())?,
        BatchNormCache {
            x_hat: Tensor::from_vec(x_hat, shape)?,
            inv_std,
            mean,
            var,
        },
    ))
}

/// Inference-mode batch norm using running statistics.
///
/// # Errors
///
/// Returns an error for non-NCHW input or mis-sized parameter vectors.
pub fn batch_norm2d_infer(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &[f32],
    running_var: &[f32],
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "batch_norm2d_infer")?;
    if gamma.len() != c || beta.len() != c || running_mean.len() != c || running_var.len() != c {
        return Err(TensorError::ShapeMismatch {
            lhs: gamma.shape().clone(),
            rhs: Shape::new(&[c]),
            op: "batch_norm2d_infer (params)",
        });
    }
    let mut out = vec![0.0f32; x.len()];
    let data = x.data();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let inv = 1.0 / (running_var[ci] + BN_EPS).sqrt();
            let (g, b) = (gamma.data()[ci], beta.data()[ci]);
            for i in base..base + h * w {
                out[i] = g * (data[i] - running_mean[ci]) * inv + b;
            }
        }
    }
    Tensor::from_vec(out, x.shape().clone())
}

/// Backward pass of training-mode batch norm.
///
/// Returns `(grad_x, grad_gamma, grad_beta)` using the standard
/// batch-norm gradient derivation.
///
/// # Errors
///
/// Returns an error when `grad_out` disagrees with the cached shapes.
pub fn batch_norm2d_backward(
    grad_out: &Tensor,
    cache: &BatchNormCache,
    gamma: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(grad_out, "batch_norm2d_backward")?;
    if grad_out.shape() != cache.x_hat.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: cache.x_hat.shape().clone(),
            op: "batch_norm2d_backward",
        });
    }
    let count = (n * h * w) as f32;
    let g = grad_out.data();
    let xh = cache.x_hat.data();
    let mut dgamma = vec![0.0f32; c];
    let mut dbeta = vec![0.0f32; c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for i in base..base + h * w {
                dgamma[ci] += g[i] * xh[i];
                dbeta[ci] += g[i];
            }
        }
    }
    let mut dx = vec![0.0f32; g.len()];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let scale = gamma.data()[ci] * cache.inv_std[ci] / count;
            for i in base..base + h * w {
                dx[i] = scale * (count * g[i] - dbeta[ci] - xh[i] * dgamma[ci]);
            }
        }
    }
    Ok((
        Tensor::from_vec(dx, grad_out.shape().clone())?,
        Tensor::from_vec(dgamma, Shape::new(&[c]))?,
        Tensor::from_vec(dbeta, Shape::new(&[c]))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::seeded_rng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = seeded_rng(1);
        let x = init::normal(&mut rng, Shape::new(&[4, 3, 5, 5]), 3.0, 2.0);
        let gamma = Tensor::full(Shape::new(&[3]), 1.0);
        let beta = Tensor::zeros(Shape::new(&[3]));
        let (y, _) = batch_norm2d_train(&x, &gamma, &beta).unwrap();
        // Each channel of the output should be ~N(0,1).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 3 + ci) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let mut rng = seeded_rng(2);
        let x = init::normal(&mut rng, Shape::new(&[2, 1, 4, 4]), 0.0, 1.0);
        let gamma = Tensor::full(Shape::new(&[1]), 2.0);
        let beta = Tensor::full(Shape::new(&[1]), 5.0);
        let (y, _) = batch_norm2d_train(&x, &gamma, &beta).unwrap();
        let mean = y.mean();
        assert!((mean - 5.0).abs() < 1e-3);
    }

    #[test]
    fn infer_uses_running_stats() {
        let x = Tensor::full(Shape::new(&[1, 1, 2, 2]), 10.0);
        let gamma = Tensor::full(Shape::new(&[1]), 1.0);
        let beta = Tensor::zeros(Shape::new(&[1]));
        let y = batch_norm2d_infer(&x, &gamma, &beta, &[10.0], &[1.0]).unwrap();
        assert!(y.data().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = seeded_rng(5);
        let x = init::normal(&mut rng, Shape::new(&[2, 2, 3, 3]), 1.0, 1.5);
        let gamma = init::normal(&mut rng, Shape::new(&[2]), 1.0, 0.1);
        let beta = init::normal(&mut rng, Shape::new(&[2]), 0.0, 0.1);
        // Weighted-sum loss so gradients are non-uniform.
        let wts = init::normal(&mut rng, x.shape().clone(), 0.0, 1.0);
        let loss = |x: &Tensor| {
            let (y, _) = batch_norm2d_train(x, &gamma, &beta).unwrap();
            y.mul(&wts).unwrap().sum()
        };
        let (_, cache) = batch_norm2d_train(&x, &gamma, &beta).unwrap();
        let (dx, _, _) = batch_norm2d_backward(&wts, &cache, &gamma).unwrap();
        let eps = 1e-2;
        for &i in &[0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 2e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn backward_param_gradients() {
        let mut rng = seeded_rng(6);
        let x = init::normal(&mut rng, Shape::new(&[2, 1, 2, 2]), 0.0, 1.0);
        let gamma = Tensor::full(Shape::new(&[1]), 1.0);
        let beta = Tensor::zeros(Shape::new(&[1]));
        let (_, cache) = batch_norm2d_train(&x, &gamma, &beta).unwrap();
        let go = Tensor::full(x.shape().clone(), 1.0);
        let (_, dgamma, dbeta) = batch_norm2d_backward(&go, &cache, &gamma).unwrap();
        // dbeta = sum of grad_out per channel.
        assert!((dbeta.data()[0] - 8.0).abs() < 1e-5);
        // dgamma = sum of x_hat * grad_out; x_hat sums to ~0.
        assert!(dgamma.data()[0].abs() < 1e-3);
    }
}
