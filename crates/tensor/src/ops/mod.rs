//! Forward and backward implementations of every operator used by the
//! paper's CNNs.
//!
//! The functions here are *pure*: they take explicit inputs and return
//! outputs (plus whatever auxiliary data the corresponding backward pass
//! needs). The stateful, parameter-owning wrappers live in
//! [`crate::layer`].
//!
//! `im2col` in [`conv`] is shared with `deepcam-hash`: the paper's context
//! generator reshapes weights and activations into exactly these patch
//! vectors before hashing them (Fig. 4 of the paper).

pub mod activation;
pub mod conv;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod pool;

pub use conv::{col2im, conv2d, conv2d_sharded, im2col, im2col_sharded, Conv2dConfig};
pub use linear::{linear, linear_sharded};
pub use pool::{avg_pool2d, max_pool2d, PoolConfig};
