//! Element-wise activations and softmax.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Rectified linear unit: `max(0, x)`.
///
/// One of the "peripheral operations" DeepCAM executes digitally in the
/// post-processing module (paper §III-B).
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward pass of [`relu`]: passes gradient where the *input* was
/// positive.
///
/// # Errors
///
/// Returns a shape error when the operands disagree.
pub fn relu_backward(grad_out: &Tensor, input: &Tensor) -> Result<Tensor> {
    if grad_out.shape() != input.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: input.shape().clone(),
            op: "relu_backward",
        });
    }
    let data = grad_out
        .data()
        .iter()
        .zip(input.data().iter())
        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(data, grad_out.shape().clone())
}

/// Row-wise softmax of a rank-2 tensor `[N, K]`, numerically stabilized by
/// subtracting the row max.
///
/// # Errors
///
/// Returns a rank error unless `x` is rank 2.
pub fn softmax(x: &Tensor) -> Result<Tensor> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.shape().rank(),
            op: "softmax",
        });
    }
    let (n, k) = (x.shape().dim(0), x.shape().dim(1));
    let mut out = vec![0.0f32; n * k];
    for i in 0..n {
        let row = &x.data()[i * k..(i + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[i * k + j] = e;
            denom += e;
        }
        for v in &mut out[i * k..(i + 1) * k] {
            *v /= denom;
        }
    }
    Tensor::from_vec(out, x.shape().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0]);
        let g = Tensor::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(relu_backward(&g, &x).unwrap().data(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], Shape::new(&[2, 3])).unwrap();
        let p = softmax(&x).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(p.data()[2] > p.data()[1]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], Shape::new(&[1, 2])).unwrap();
        let p = softmax(&x).unwrap();
        assert!(p.all_finite());
        assert!((p.data()[0] + p.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rejects_rank_1() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert!(softmax(&x).is_err());
    }
}
