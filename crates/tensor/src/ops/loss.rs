//! Classification loss: softmax cross-entropy with integrated gradient.

use crate::error::TensorError;
use crate::ops::activation::softmax;
use crate::tensor::Tensor;
use crate::Result;

/// Output of [`cross_entropy`]: the scalar loss, the softmax
/// probabilities, and the ready-to-backpropagate logit gradient.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Softmax probabilities, `[N, K]`.
    pub probs: Tensor,
    /// Gradient of the mean loss with respect to the logits, `[N, K]`.
    pub grad_logits: Tensor,
}

/// Softmax cross-entropy between `logits [N, K]` and integer `targets`
/// (`targets.len() == N`).
///
/// Combining softmax and NLL keeps the backward pass the numerically
/// stable `(p - onehot) / N` form.
///
/// # Errors
///
/// Returns an error when `logits` is not rank 2, `targets` has the wrong
/// length, or any target index is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<CrossEntropyOutput> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "cross_entropy",
        });
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if targets.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: targets.len(),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= k) {
        return Err(TensorError::InvalidConfig(format!(
            "target class {bad} out of range for {k} classes"
        )));
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        let p = probs.data()[i * k + t].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + t] -= 1.0;
    }
    grad.map_inplace(|g| g * inv_n);
    Ok(CrossEntropyOutput {
        loss: loss * inv_n,
        probs,
        grad_logits: grad,
    })
}

/// Fraction of rows whose argmax equals the target class.
///
/// # Errors
///
/// Returns an error when shapes disagree (same conditions as
/// [`cross_entropy`]).
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "accuracy",
        });
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if targets.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: targets.len(),
        });
    }
    let mut correct = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == t {
            correct += 1;
        }
    }
    Ok(correct as f32 / n.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], Shape::new(&[2, 2])).unwrap();
        let out = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(Shape::new(&[1, 10]));
        let out = cross_entropy(&logits, &[3]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits =
            Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0], Shape::new(&[2, 3])).unwrap();
        let targets = [2usize, 0];
        let out = cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fp = cross_entropy(&lp, &targets).unwrap().loss;
            let fm = cross_entropy(&lm, &targets).unwrap().loss;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - out.grad_logits.data()[i]).abs() < 1e-3,
                "grad[{i}]: {num} vs {}",
                out.grad_logits.data()[i]
            );
        }
    }

    #[test]
    fn rejects_bad_targets() {
        let logits = Tensor::zeros(Shape::new(&[2, 3]));
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(
            vec![2.0, 1.0, 0.0, 0.0, 1.0, 2.0, 1.0, 2.0, 0.0],
            Shape::new(&[3, 3]),
        )
        .unwrap();
        let acc = accuracy(&logits, &[0, 2, 0]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
