//! # deepcam-tensor
//!
//! A minimal, dependency-light CPU tensor and neural-network substrate for
//! the DeepCAM (DATE 2023) reproduction.
//!
//! The DeepCAM paper evaluates its CAM-based accelerator on pretrained
//! PyTorch CNNs (LeNet5, VGG11, VGG16, ResNet18). Since no DNN framework is
//! available offline, this crate provides everything the reproduction needs
//! from such a framework:
//!
//! * an NCHW [`Tensor`] of `f32` with shape bookkeeping,
//! * the forward operators used by the paper's CNNs (convolution via
//!   im2col, linear, max/avg pooling, batch normalization, ReLU, softmax),
//! * full backpropagation through all of those operators plus an SGD
//!   optimizer, so that the scaled-down accuracy-experiment models can be
//!   trained in-repo (see `DESIGN.md` §4), and
//! * the [`layer`] module with a [`Layer`] trait, [`Sequential`]
//!   container and residual blocks used by the model zoo.
//!
//! # Example
//!
//! ```
//! use deepcam_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::new(&[2, 2]))?;
//! let b = a.scale(2.0);
//! assert_eq!(b.data()[3], 8.0);
//! # Ok::<(), deepcam_tensor::TensorError>(())
//! ```

// The workspace's single unsafe block lives in `pool.rs` (see
// ANALYZE_UNSAFE.md); inside any unsafe fn, each unsafe operation must
// still be wrapped in its own audited `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod init;
pub mod layer;
pub mod ops;
pub mod optim;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use layer::{Layer, Sequential};
pub use pool::{Parallelism, ThreadPool};
pub use shape::Shape;
pub use tensor::{matmul_dense_into, matmul_into, Tensor};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
