//! Weight initializers for the trainable models.

use rand::Rng;

use crate::rng::{fill_normal, fill_uniform};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The right default for the ReLU CNNs of the paper's model zoo.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{init, rng::seeded_rng, Shape};
///
/// let mut rng = seeded_rng(0);
/// let w = init::he_normal(&mut rng, Shape::new(&[16, 8, 3, 3]), 72);
/// assert_eq!(w.len(), 16 * 8 * 9);
/// ```
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, shape: Shape, fan_in: usize) -> Tensor {
    let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
    let mut t = Tensor::zeros(shape);
    fill_normal(rng, t.data_mut(), 0.0, std_dev);
    t
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: Shape,
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let mut t = Tensor::zeros(shape);
    fill_uniform(rng, t.data_mut(), -a, a);
    t
}

/// Uniform initialization in `[lo, hi)`, used mostly by tests and by the
/// synthetic data generators.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: Shape, lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill_uniform(rng, t.data_mut(), lo, hi);
    t
}

/// Standard-normal initialization scaled by `std_dev`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, shape: Shape, mean: f32, std_dev: f32) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill_normal(rng, t.data_mut(), mean, std_dev);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn he_std_matches_fan_in() {
        let mut rng = seeded_rng(5);
        let w = he_normal(&mut rng, Shape::new(&[50_000]), 50);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.1, "var {var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = seeded_rng(6);
        let w = xavier_uniform(&mut rng, Shape::new(&[1000]), 30, 70);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_normal(&mut seeded_rng(1), Shape::new(&[64]), 8);
        let b = he_normal(&mut seeded_rng(1), Shape::new(&[64]), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fan_in_does_not_panic() {
        let w = he_normal(&mut seeded_rng(2), Shape::new(&[4]), 0);
        assert!(w.all_finite());
    }
}
