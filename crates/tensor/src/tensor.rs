//! The dense `f32` tensor type used throughout the reproduction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric currency of the reproduction: CNN activations
/// and weights ([`crate::layer`]), im2col patch matrices
/// ([`crate::ops::conv`]), and the vectors hashed by `deepcam-hash` are all
/// `Tensor`s.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{Tensor, Shape};
///
/// let t = Tensor::zeros(Shape::new(&[2, 3]));
/// assert_eq!(t.len(), 6);
/// let u = t.map(|x| x + 1.0);
/// assert!(u.data().iter().all(|&v| v == 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from `shape.volume()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or bounds are invalid (debug builds).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element reference at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or bounds are invalid (debug builds).
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the buffer with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(self, shape: Shape) -> Result<Self> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, producing a new tensor.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    ///
    /// This is the magnitude component of the paper's geometric dot-product
    /// (eq. 2).
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors of identical volume, flattened.
    ///
    /// This is the *algebraic* dot-product of eq. 1 — the reference that
    /// DeepCAM's geometric approximation is compared against.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        if self.len() != rhs.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "dot",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Index and value of the maximum element.
    ///
    /// Returns `None` for an empty tensor. Ties resolve to the first
    /// occurrence, matching `argmax` conventions elsewhere.
    pub fn argmax(&self) -> Option<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best
    }

    /// Matrix multiplication for rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, and [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "matmul",
            });
        }
        if rhs.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.shape.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (rhs.shape.dim(0), rhs.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        // ikj loop order keeps the innermost accesses contiguous for both
        // the rhs row and the output row.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, Shape::new(&[m, n]))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::new(&[n, m]))
    }

    /// Extracts row `row` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.shape.dim(1);
        Tensor::from_slice(&self.data[row * n..(row + 1) * n])
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op,
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::new(dims)).expect("test tensor")
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 3], Shape::new(&[2, 2])).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], Shape::new(&[2, 2])).is_ok());
    }

    #[test]
    fn zeros_and_full() {
        assert!(Tensor::zeros(Shape::new(&[3]))
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Tensor::full(Shape::new(&[3]), 2.5)
            .data()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2, 1]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 4.0], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn dot_matches_manual() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn paper_example_dot_product() {
        // The worked example from DeepCAM §II-B: x·y = 2.0765.
        let x = t(&[0.6012, 0.8383, 0.6859, 0.5712], &[4]);
        let y = t(&[0.9044, 0.5352, 0.8110, 0.9243], &[4]);
        let d = x.dot(&y).unwrap();
        assert!((d - 2.0765).abs() < 1e-3, "got {d}");
    }

    #[test]
    fn l2_norm() {
        let a = t(&[3.0, 4.0], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&eye).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::new(&[2, 2]));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 6], &[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = t(&[1.0; 3], &[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let a = t(&[1.0, 5.0, 5.0, 2.0], &[4]);
        assert_eq!(a.argmax(), Some((1, 5.0)));
        assert_eq!(Tensor::zeros(Shape::new(&[0])).argmax(), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[4]);
        let b = a.clone().reshape(Shape::new(&[2, 2])).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(Shape::new(&[3])).is_err());
    }

    #[test]
    fn row_extraction() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.row(1).data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn display_truncates() {
        let a = Tensor::zeros(Shape::new(&[100]));
        let s = a.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn finite_check() {
        let mut a = t(&[1.0, 2.0], &[2]);
        assert!(a.all_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(!a.all_finite());
    }
}
