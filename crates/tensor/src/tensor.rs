//! The dense `f32` tensor type used throughout the reproduction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric currency of the reproduction: CNN activations
/// and weights ([`crate::layer`]), im2col patch matrices
/// ([`crate::ops::conv`]), and the vectors hashed by `deepcam-hash` are all
/// `Tensor`s.
///
/// # Example
///
/// ```
/// use deepcam_tensor::{Tensor, Shape};
///
/// let t = Tensor::zeros(Shape::new(&[2, 3]));
/// assert_eq!(t.len(), 6);
/// let u = t.map(|x| x + 1.0);
/// assert!(u.data().iter().all(|&v| v == 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from `shape.volume()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or bounds are invalid (debug builds).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element reference at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or bounds are invalid (debug builds).
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the buffer with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(self, shape: Shape) -> Result<Self> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, producing a new tensor.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    ///
    /// This is the magnitude component of the paper's geometric dot-product
    /// (eq. 2).
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors of identical volume, flattened.
    ///
    /// This is the *algebraic* dot-product of eq. 1 — the reference that
    /// DeepCAM's geometric approximation is compared against.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        if self.len() != rhs.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "dot",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Index and value of the maximum element.
    ///
    /// Returns `None` for an empty tensor. Ties resolve to the first
    /// occurrence, matching `argmax` conventions elsewhere.
    pub fn argmax(&self) -> Option<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best
    }

    /// Matrix multiplication for rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, and [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "matmul",
            });
        }
        if rhs.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.shape.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (rhs.shape.dim(0), rhs.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, m, k, &rhs.data, n, &mut out);
        Tensor::from_vec(out, Shape::new(&[m, n]))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::new(&[n, m]))
    }

    /// Extracts row `row` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.shape.dim(1);
        Tensor::from_slice(&self.data[row * n..(row + 1) * n])
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
                op,
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

/// The shared GEMM kernel behind [`Tensor::matmul`]: `out = a · b` for
/// row-major `a [m, k]`, `b [k, n]`, `out [m, n]`.
///
/// Exposed as a slice-level free function so the inference engine can
/// project im2col patch chunks straight out of a larger buffer into
/// per-worker scratch — no intermediate `Tensor` clone of the chunk.
///
/// # Layout and bit-exactness
///
/// The loop order is ikj with the **i-loop blocked four wide**: four
/// lhs rows walk the k dimension together, so every rhs row is loaded
/// once per block instead of once per row (4× less rhs traffic) and the
/// inner j-loop updates four independent output rows per rhs element —
/// a form the auto-vectorizer turns into wide SIMD with several
/// accumulator chains in flight. Each output element still accumulates
/// its `k` products **in ascending k order with sequential adds,
/// skipping terms whose `a` element is exactly zero** — the identical
/// float expression the historical scalar kernel evaluated, so results
/// are bit-exact with it (the parallel-equivalence, golden-vector and
/// hot-path differential suites pin this). Blocking only changes how
/// often rhs rows are re-read, never the per-element math.
///
/// (A k-blocked + j-unrolled variant was measured first and rejected:
/// the hand-unrolled dependent-add chains defeated the vectorizer and
/// lost to the plain axpy loop on every layer shape.)
///
/// # Panics
///
/// Panics when a slice length disagrees with its stated dimensions.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs buffer must be m*k");
    assert_eq!(b.len(), k * n, "rhs buffer must be k*n");
    assert_eq!(out.len(), m * n, "out buffer must be m*n");
    out.fill(0.0);
    let blocks = m / 4;
    for ib in 0..blocks {
        let i = ib * 4;
        let (r0, rest) = out[i * n..(i + 4) * n].split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let a0_row = &a[i * k..(i + 1) * k];
        let a1_row = &a[(i + 1) * k..(i + 2) * k];
        let a2_row = &a[(i + 2) * k..(i + 3) * k];
        let a3_row = &a[(i + 3) * k..(i + 4) * k];
        for kk in 0..k {
            let (a0, a1, a2, a3) = (a0_row[kk], a1_row[kk], a2_row[kk], a3_row[kk]);
            let b_row = &b[kk * n..(kk + 1) * n];
            if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                // Dense fast path: one pass over the rhs row feeds all
                // four output rows (each `r*[j]` chain is independent —
                // this is what vectorizes).
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            } else {
                // A zero among the four: per-row zero-skip axpy keeps
                // the skipped terms identical to the historical kernel
                // (the rhs row is L1-hot for the up-to-3 passes).
                axpy_row(r0, a0, b_row);
                axpy_row(r1, a1, b_row);
                axpy_row(r2, a2, b_row);
                axpy_row(r3, a3, b_row);
            }
        }
    }
    // Remainder rows (m % 4): the historical scalar ikj row kernel.
    for i in blocks * 4..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            axpy_row(out_row, av, &b[kk * n..(kk + 1) * n]);
        }
    }
}

/// One scalar k-step of the ikj kernel: `out += a * b_row`, skipped
/// entirely when `a` is exactly zero (the historical sparsity shortcut —
/// preserved because `0.0 * b` is not a bitwise no-op for every `b`).
#[inline]
fn axpy_row(out: &mut [f32], a: f32, b_row: &[f32]) {
    if a == 0.0 {
        return;
    }
    for (o, &b) in out.iter_mut().zip(b_row.iter()) {
        *o += a * b;
    }
}

/// Register-tiled dense GEMM: like [`matmul_into`] but **without** the
/// zero-skip shortcut, which lets a 4-row × 32-column accumulator tile
/// live in registers across the whole k walk (the skip's per-`(i,k)`
/// branch would force accumulators back to memory). Column and row
/// tails reuse the same tile at narrower widths, so every output
/// element — tail or not — is one serial ascending-k add chain.
///
/// # Bit-exactness contract
///
/// Requires every element of `b` to be finite. Under that premise the
/// result is **bit-identical** to [`matmul_into`] and the historical
/// zero-skip kernel: the extra `0.0 * b` terms are `±0.0`, and an IEEE
/// accumulator that starts at `+0.0` can never become `-0.0` (exact
/// cancellation rounds to `+0.0`, and `+0.0 + ±0.0 = +0.0`), so adding
/// them never changes a single bit. With a non-finite `b` element the
/// skipped `0 · ∞ = NaN` terms would differ — hence the dedicated entry
/// point instead of replacing [`matmul_into`]. The inference engine
/// uses this for its projection GEMM (projection matrices are finite by
/// construction); `tests/hotpath_reference.rs` pins the equivalence
/// against the historical kernel on real pipelines.
///
/// # Panics
///
/// Panics when a slice length disagrees with its stated dimensions.
// analyze: alloc-free
pub fn matmul_dense_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs buffer must be m*k");
    assert_eq!(b.len(), k * n, "rhs buffer must be k*n");
    assert_eq!(out.len(), m * n, "out buffer must be m*n");
    const JT: usize = 32;
    let blocks = m / 4;
    for ib in 0..blocks {
        let i = ib * 4;
        let a0_row = &a[i * k..(i + 1) * k];
        let a1_row = &a[(i + 1) * k..(i + 2) * k];
        let a2_row = &a[(i + 2) * k..(i + 3) * k];
        let a3_row = &a[(i + 3) * k..(i + 4) * k];
        let mut jt = 0usize;
        while jt + JT <= n {
            // 4×32 accumulator tile: eight 16-lane vectors, each an
            // independent add chain (hides FP-add latency), all kept in
            // registers for the entire k walk. Per element the adds are
            // ascending in k — the historical order.
            let mut acc0 = [0.0f32; JT];
            let mut acc1 = [0.0f32; JT];
            let mut acc2 = [0.0f32; JT];
            let mut acc3 = [0.0f32; JT];
            for kk in 0..k {
                let bv = &b[kk * n + jt..kk * n + jt + JT];
                let (x0, x1, x2, x3) = (a0_row[kk], a1_row[kk], a2_row[kk], a3_row[kk]);
                for l in 0..JT {
                    acc0[l] += x0 * bv[l];
                    acc1[l] += x1 * bv[l];
                    acc2[l] += x2 * bv[l];
                    acc3[l] += x3 * bv[l];
                }
            }
            out[i * n + jt..i * n + jt + JT].copy_from_slice(&acc0);
            out[(i + 1) * n + jt..(i + 1) * n + jt + JT].copy_from_slice(&acc1);
            out[(i + 2) * n + jt..(i + 2) * n + jt + JT].copy_from_slice(&acc2);
            out[(i + 3) * n + jt..(i + 3) * n + jt + JT].copy_from_slice(&acc3);
            jt += JT;
        }
        let w = n - jt;
        if w > 0 {
            // Column tail (n % 32): the same 4-row register tile at
            // runtime width `w` instead of a per-column scalar walk —
            // the lanes stay independent add chains, and each output
            // element still accumulates ascending in k in one serial
            // chain, so the result is bit-identical to the scalar tail.
            let mut acc0 = [0.0f32; JT];
            let mut acc1 = [0.0f32; JT];
            let mut acc2 = [0.0f32; JT];
            let mut acc3 = [0.0f32; JT];
            for kk in 0..k {
                let bv = &b[kk * n + jt..(kk + 1) * n];
                let (x0, x1, x2, x3) = (a0_row[kk], a1_row[kk], a2_row[kk], a3_row[kk]);
                for (l, &bvl) in bv.iter().enumerate() {
                    acc0[l] += x0 * bvl;
                    acc1[l] += x1 * bvl;
                    acc2[l] += x2 * bvl;
                    acc3[l] += x3 * bvl;
                }
            }
            out[i * n + jt..(i + 1) * n].copy_from_slice(&acc0[..w]);
            out[(i + 1) * n + jt..(i + 2) * n].copy_from_slice(&acc1[..w]);
            out[(i + 2) * n + jt..(i + 3) * n].copy_from_slice(&acc2[..w]);
            out[(i + 3) * n + jt..(i + 4) * n].copy_from_slice(&acc3[..w]);
        }
    }
    // Remainder rows (m % 4): a 1-row register tile per column block —
    // accumulators live in registers across the k walk instead of
    // read-modify-writing `out` per (k, j). Same per-element add chain
    // (ascending k), so bit-identical to the memory-accumulating form.
    for i in blocks * 4..m {
        let a_row = &a[i * k..(i + 1) * k];
        let mut jt = 0usize;
        while jt < n {
            let w = JT.min(n - jt);
            let mut acc = [0.0f32; JT];
            for (kk, &av) in a_row.iter().enumerate() {
                let bv = &b[kk * n + jt..kk * n + jt + w];
                for (l, &bvl) in bv.iter().enumerate() {
                    acc[l] += av * bvl;
                }
            }
            out[i * n + jt..i * n + jt + w].copy_from_slice(&acc[..w]);
            jt += JT;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::new(dims)).expect("test tensor")
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 3], Shape::new(&[2, 2])).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], Shape::new(&[2, 2])).is_ok());
    }

    #[test]
    fn zeros_and_full() {
        assert!(Tensor::zeros(Shape::new(&[3]))
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Tensor::full(Shape::new(&[3]), 2.5)
            .data()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2, 1]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 4.0], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn dot_matches_manual() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn paper_example_dot_product() {
        // The worked example from DeepCAM §II-B: x·y = 2.0765.
        let x = t(&[0.6012, 0.8383, 0.6859, 0.5712], &[4]);
        let y = t(&[0.9044, 0.5352, 0.8110, 0.9243], &[4]);
        let d = x.dot(&y).unwrap();
        assert!((d - 2.0765).abs() < 1e-3, "got {d}");
    }

    #[test]
    fn l2_norm() {
        let a = t(&[3.0, 4.0], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&eye).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::new(&[2, 2]));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 6], &[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = t(&[1.0; 3], &[3]);
        assert!(v.matmul(&a).is_err());
    }

    /// The historical scalar ikj kernel, kept verbatim as the bit-exact
    /// reference for the blocked/unrolled `matmul_into`.
    fn matmul_reference(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_bit_exact_with_scalar_reference() {
        // Shapes straddling every block/unroll boundary (k % 4, n % 4),
        // with values whose accumulation order is observable in f32 and
        // exact zeros to exercise the sparsity fallback.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as i32 % 1000) as f32 / 7.0 - 70.0;
            if v.rem_euclid(11.0) < 1.0 {
                0.0
            } else {
                v
            }
        };
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (3, 4, 4),
            (4, 5, 7),
            (2, 8, 12),
            (5, 17, 9),
            (1, 100, 3),
            (3, 7, 33),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut fast = vec![f32::NAN; m * n]; // kernel must overwrite scratch
            matmul_into(&a, m, k, &b, n, &mut fast);
            let reference = matmul_reference(&a, m, k, &b, n);
            for (x, y) in fast.iter().zip(reference.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn dense_matmul_bit_exact_with_skip_kernel_on_finite_data() {
        // The dense register-tiled kernel must agree bit-for-bit with
        // the zero-skip kernels whenever the rhs is finite — including
        // lhs buffers full of exact zeros (the ±0.0-term proof in the
        // doc comment). Shapes cross the 4-row and 32-column tile
        // boundaries.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as i32 % 1000) as f32 / 9.0 - 50.0;
            if v.rem_euclid(7.0) < 2.0 {
                0.0
            } else {
                v
            }
        };
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 3, 32),
            (5, 8, 33),
            (7, 16, 40),
            (8, 27, 64),
            (3, 5, 100),
            (9, 72, 31),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut skip = vec![0.0f32; m * n];
            matmul_into(&a, m, k, &b, n, &mut skip);
            let mut dense = vec![f32::NAN; m * n];
            matmul_dense_into(&a, m, k, &b, n, &mut dense);
            for (x, y) in dense.iter().zip(skip.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn matmul_into_validates_lengths() {
        let mut out = vec![0.0f32; 4];
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        matmul_into(&a, 2, 2, &b, 2, &mut out); // consistent: fine
        let result = std::panic::catch_unwind(move || {
            let mut out = vec![0.0f32; 3];
            matmul_into(&a, 2, 2, &b, 2, &mut out);
        });
        assert!(result.is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let a = t(&[1.0, 5.0, 5.0, 2.0], &[4]);
        assert_eq!(a.argmax(), Some((1, 5.0)));
        assert_eq!(Tensor::zeros(Shape::new(&[0])).argmax(), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[4]);
        let b = a.clone().reshape(Shape::new(&[2, 2])).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(Shape::new(&[3])).is_err());
    }

    #[test]
    fn row_extraction() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.row(1).data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn display_truncates() {
        let a = Tensor::zeros(Shape::new(&[100]));
        let s = a.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn finite_check() {
        let mut a = t(&[1.0, 2.0], &[2]);
        assert!(a.all_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(!a.all_finite());
    }
}
