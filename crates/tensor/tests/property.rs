//! Property-based tests for the tensor substrate.

use deepcam_tensor::ops::activation::{relu, softmax};
use deepcam_tensor::ops::conv::{conv2d, Conv2dConfig};
use deepcam_tensor::ops::pool::{avg_pool2d, max_pool2d, PoolConfig};
use deepcam_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let volume: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, volume)
        .prop_map(move |v| Tensor::from_vec(v, Shape::new(&dims)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relu_is_idempotent_and_nonnegative(t in tensor_strategy(vec![3, 7])) {
        let once = relu(&t);
        let twice = relu(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(vec![4, 6])) {
        let p = softmax(&t).unwrap();
        for row in 0..4 {
            let s: f32 = p.data()[row * 6..(row + 1) * 6].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(p.data()[row * 6..(row + 1) * 6].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(t in tensor_strategy(vec![2, 5]), shift in -50.0f32..50.0) {
        let shifted = t.map(|v| v + shift);
        let a = softmax(&t).unwrap();
        let b = softmax(&shifted).unwrap();
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn max_pool_dominates_avg_pool(t in tensor_strategy(vec![1, 2, 6, 6])) {
        let cfg = PoolConfig::new(2);
        let (mx, _) = max_pool2d(&t, &cfg).unwrap();
        let av = avg_pool2d(&t, &cfg).unwrap();
        for (m, a) in mx.data().iter().zip(av.data().iter()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn conv_is_linear_in_input(
        x in tensor_strategy(vec![1, 2, 5, 5]),
        y in tensor_strategy(vec![1, 2, 5, 5]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
    ) {
        let cfg = Conv2dConfig::new(2, 3, 3).with_padding(1);
        let cx = conv2d(&x, &w, None, &cfg).unwrap();
        let cy = conv2d(&y, &w, None, &cfg).unwrap();
        let sum = x.add(&y).unwrap();
        let csum = conv2d(&sum, &w, None, &cfg).unwrap();
        let expected = cx.add(&cy).unwrap();
        for (a, b) in csum.data().iter().zip(expected.data().iter()) {
            prop_assert!((a - b).abs() < 1e-2 * a.abs().max(1.0));
        }
    }

    #[test]
    fn dot_is_bilinear_under_scaling(
        a in proptest::collection::vec(-4.0f32..4.0, 12),
        b in proptest::collection::vec(-4.0f32..4.0, 12),
        alpha in -3.0f32..3.0,
    ) {
        let ta = Tensor::from_slice(&a);
        let tb = Tensor::from_slice(&b);
        let base = ta.dot(&tb).unwrap();
        let scaled = ta.scale(alpha).dot(&tb).unwrap();
        prop_assert!((scaled - alpha * base).abs() < 1e-2 * base.abs().max(1.0));
    }

    #[test]
    fn l2_norm_triangle_inequality(
        a in proptest::collection::vec(-4.0f32..4.0, 9),
        b in proptest::collection::vec(-4.0f32..4.0, 9),
    ) {
        let ta = Tensor::from_slice(&a);
        let tb = Tensor::from_slice(&b);
        let sum = ta.add(&tb).unwrap();
        prop_assert!(sum.l2_norm() <= ta.l2_norm() + tb.l2_norm() + 1e-4);
    }

    #[test]
    fn transpose_preserves_matmul(
        a in tensor_strategy(vec![3, 4]),
        b in tensor_strategy(vec![4, 2]),
    ) {
        // (AB)^T == B^T A^T
        let ab_t = a.matmul(&b).unwrap().transpose().unwrap();
        let bt_at = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in ab_t.data().iter().zip(bt_at.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
