//! Seeded-interleaving stress harness for the work-stealing pool.
//!
//! A loom-style schedule explorer without loom: each round draws a
//! random task structure — worker count, task count, nesting depth,
//! panic injection — from a seeded RNG, and perturbs the schedule with
//! seeded busy-work of varying length, so a failing round reproduces
//! its structure from the seed while the OS scheduler supplies the
//! interleaving variety. The invariants under test are the ones the
//! `SAFETY:` comment in `pool.rs` relies on: every spawned task runs
//! exactly once, `scope` never returns while a task is in flight (so
//! `'env` borrows stay valid), panics propagate without leaking tasks,
//! and the pool stays serviceable afterwards.
//!
//! `DEEPCAM_STRESS_ITERS` scales the round count (the sanitizer CI legs
//! raise it); Miri runs a reduced set through the same code.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use deepcam_tensor::pool::split_ranges;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::ThreadPool;
use rand::RngExt;

fn rounds(default: usize) -> usize {
    if cfg!(miri) {
        return 3;
    }
    std::env::var("DEEPCAM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seeded busy-work whose duration varies task-to-task (the schedule
/// perturbation); returns a value derived from `x` so the loop cannot
/// be optimized away.
fn spin(x: u64, iters: u64) -> u64 {
    let mut acc = x.wrapping_add(1);
    for i in 0..iters {
        acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7) ^ i;
        if i % 64 == 0 {
            std::hint::spin_loop();
        }
    }
    acc
}

#[test]
fn every_spawned_task_runs_exactly_once_under_random_structures() {
    for round in 0..rounds(40) as u64 {
        let mut rng = seeded_rng(0xA110 + round);
        let pool = ThreadPool::new(rng.random_range(1..=4));
        let tasks = rng.random_range(0..=24usize);
        // Per-task (spin length, nested-subtask count) drawn up front so
        // the structure is a pure function of the seed.
        let plan: Vec<(u64, usize)> = (0..tasks)
            .map(|_| (rng.random_range(0..400u64), rng.random_range(0..=3usize)))
            .collect();
        let runs: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        let nested_runs = AtomicUsize::new(0);
        let expected_nested: usize = plan.iter().map(|&(_, n)| n).sum();

        pool.scope(|s| {
            for (i, &(work, nested)) in plan.iter().enumerate() {
                let runs = &runs;
                let nested_runs = &nested_runs;
                let pool = &pool;
                s.spawn(move || {
                    std::hint::black_box(spin(i as u64, work));
                    runs[i].fetch_add(1, Ordering::SeqCst);
                    if nested > 0 {
                        // A task opening its own scope on the same pool:
                        // workers must help instead of deadlocking.
                        pool.scope(|inner| {
                            for j in 0..nested {
                                inner.spawn(move || {
                                    std::hint::black_box(spin(j as u64, work / 2));
                                    nested_runs.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    }
                });
            }
        });

        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "round {round}: task {i} ran a wrong number of times"
            );
        }
        assert_eq!(
            nested_runs.load(Ordering::SeqCst),
            expected_nested,
            "round {round}: nested task count"
        );
    }
}

#[test]
fn run_chunks_mut_covers_every_element_disjointly() {
    for round in 0..rounds(40) as u64 {
        let mut rng = seeded_rng(0xC4A9 + round);
        let pool = ThreadPool::new(rng.random_range(1..=4));
        let len = rng.random_range(0..=512usize);
        let chunk_len = rng.random_range(1..=64usize);
        let mut data = vec![usize::MAX; len];
        pool.run_chunks_mut(&mut data, chunk_len, |i, chunk| {
            std::hint::black_box(spin(i as u64, 50));
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        for (pos, &v) in data.iter().enumerate() {
            assert_eq!(v, pos / chunk_len, "round {round}: element {pos}");
        }
    }
}

#[test]
fn run_indexed_matches_the_serial_reduction() {
    for round in 0..rounds(40) as u64 {
        let mut rng = seeded_rng(0x1D45 + round);
        let pool = ThreadPool::new(rng.random_range(1..=4));
        let n = rng.random_range(0..=64usize);
        let parallel = pool.run_indexed(n, |i| spin(i as u64, 100 + (i as u64 % 37)));
        let serial: Vec<u64> = (0..n)
            .map(|i| spin(i as u64, 100 + (i as u64 % 37)))
            .collect();
        assert_eq!(parallel, serial, "round {round}");
    }
}

#[test]
fn panicking_tasks_propagate_and_leave_the_pool_serviceable() {
    // One pool reused across every round: a panic must not poison it.
    let pool = ThreadPool::new(3);
    for round in 0..rounds(30) as u64 {
        let mut rng = seeded_rng(0xBAD5EED + round);
        let tasks = rng.random_range(1..=12usize);
        let bomber = rng.random_range(0..tasks);
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..tasks {
                    let survivors = &survivors;
                    s.spawn(move || {
                        std::hint::black_box(spin(i as u64, 100));
                        if i == bomber {
                            panic!("injected panic in task {i}");
                        }
                        survivors.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "round {round}: the panic must propagate");
        // `scope` drained before unwinding, so every non-bomber ran.
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            tasks - 1,
            "round {round}: survivors"
        );
        // The same pool still runs a clean scope to completion.
        let after = pool.run_indexed(8, |i| i * i);
        assert_eq!(after, vec![0, 1, 4, 9, 16, 25, 36, 49], "round {round}");
    }
}

#[test]
fn split_ranges_always_partitions_exactly() {
    for round in 0..rounds(200) as u64 {
        let mut rng = seeded_rng(0x5417 + round);
        let n = rng.random_range(0..=10_000usize);
        let parts = rng.random_range(1..=64usize);
        let ranges = split_ranges(n, parts);
        let mut covered = 0usize;
        for (k, r) in ranges.iter().enumerate() {
            assert_eq!(r.start, covered, "round {round}: range {k} not contiguous");
            assert!(!r.is_empty(), "round {round}: empty range {k}");
            covered = r.end;
        }
        assert_eq!(covered, n, "round {round}: total coverage");
        assert!(ranges.len() <= parts, "round {round}: too many parts");
    }
}
