//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements the small `rand` API subset the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic PRNG (xoshiro256++),
//! * [`Rng`] / [`RngExt`] — `random::<T>()` and `random_range(..)`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only hard requirement here: every experiment in the
//! reproduction is seeded, so the exact generator family does not matter as
//! long as it is a fixed function of the seed. Do **not** use this for
//! cryptography.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait matching `rand::Rng`; all generators implement it.
///
/// The value-producing methods live on [`RngExt`] (blanket-implemented for
/// every `Rng`), mirroring the core/ext split this workspace codes against.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[start, end]` (inclusive); works for any integer
/// type whose domain fits in `i128`/64 bits of span.
fn sample_int_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: i128, end: i128) -> i128 {
    debug_assert!(start <= end);
    let span_minus_1 = (end - start) as u64;
    if span_minus_1 == u64::MAX {
        // The full 64-bit domain: every word is a valid sample.
        return start + rng.next_u64() as i128;
    }
    let span = span_minus_1 + 1;
    // Debiased via rejection on the final partial block.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return start + (v % span) as i128;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                sample_int_inclusive(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                sample_int_inclusive(rng, start as i128, end as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // FP rounding can land exactly on the excluded upper bound
                // (e.g. u = 1 - 2^-24 in a range whose ulp exceeds the
                // remaining gap); clamp to keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Value-producing extension methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value uniformly from the type's natural domain
    /// (`[0, 1)` for floats, the full range for integers, fair for bools).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fair coin flip with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 (the construction recommended by the
    /// xoshiro authors for expanding a 64-bit seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice helpers matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random::<f32>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn float_range_never_returns_excluded_upper_bound() {
        // 16.0..17.0 has a one-ulp gap of ~9.5e-7 near 17.0, so the
        // unclamped affine map can round u = 1 - 2^-24 up to exactly 17.0.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200_000 {
            let f = rng.random_range(16.0f32..17.0);
            assert!((16.0..17.0).contains(&f), "got {f}");
        }
        // Degenerate one-ulp-wide range: must still stay below `end`.
        let lo = 16.0f32;
        let hi = lo.next_up();
        for _ in 0..1_000 {
            assert_eq!(rng.random_range(lo..hi), lo);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
