//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the `deepcam-bench` benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::default()` with
//! `warm_up_time`/`measurement_time`/`sample_size`, `benchmark_group`,
//! `bench_function` and `Bencher::iter` — with a simple wall-clock
//! measurement loop. It reports min/median/mean per benchmark. It performs
//! no statistical analysis, saves no baselines, and exists so that `cargo
//! bench` and `cargo build --benches` work without registry access.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, configured per group via the builder
/// methods and handed to each target of [`criterion_group!`].
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group; benchmark ids are printed as `group/name`.
    /// The group gets its own copy of the config, so group-level setter
    /// calls don't leak into later groups (matching real criterion).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            config: self.clone(),
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&cfg, &id.into(), f);
        self
    }
}

/// A named collection of benchmarks with its own copy of the
/// [`Criterion`] config.
pub struct BenchmarkGroup {
    config: Criterion,
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&self.config, &full, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`]
/// with the code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export matching `criterion::black_box` (the std implementation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn time_one(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(cfg: &Criterion, id: &str, mut f: F) {
    // Warm-up while calibrating how many iterations fit in one sample.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < cfg.warm_up_time {
        let t = time_one(&mut f, iters);
        per_iter = t.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        if t < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }

    // Pick an iteration count so sample_size samples fill measurement_time.
    let budget = cfg.measurement_time.as_nanos() / cfg.sample_size.max(1) as u128;
    let per = per_iter.as_nanos().max(1);
    iters = ((budget / per).clamp(1, u64::MAX as u128)) as u64;

    let mut samples: Vec<f64> = (0..cfg.sample_size)
        .map(|_| time_one(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));

    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench: {id:<48} min {:>12} median {:>12} mean {:>12} ({} iters x {} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        iters,
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group. Supports both the simple form
/// `criterion_group!(name, target_a, target_b)` and the configured form
/// with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point; requires `harness = false` in the
/// target's manifest entry.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(2);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_naming_and_finish() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
