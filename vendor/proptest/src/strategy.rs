//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: `sample` draws one value directly.
pub trait Strategy {
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up after a bounded
    /// number of rejected draws.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` combinator.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive draws",
            self.reason
        );
    }
}

/// Homogeneous `prop_oneof!` support: picks one of the arms uniformly.
#[derive(Clone, Debug)]
pub struct OneOf<S> {
    arms: Vec<S>,
}

impl<S> OneOf<S> {
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);
