//! Offline vendored stand-in for `proptest`.
//!
//! The container has no registry access, so this crate reimplements the
//! slice of the proptest API the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map`, range/tuple/[`strategy::Just`]
//!   strategies, [`collection::vec`], [`arbitrary::any`] and
//!   [`prop_oneof!`] (homogeneous variants),
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: a failing case panics with its case number, and the whole run is
//! deterministic (the RNG is seeded from the test name), so re-running the
//! test reproduces the failure exactly.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares a block of property tests. Each `fn` becomes a `#[test]` that
/// samples its arguments `config.cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $(#[test] fn $name:ident($($args:tt)*) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default());
            $(#[test] fn $name($($args)*) $body)*);
    };
    (@impl ($config:expr);
        $(#[test] fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases * 16 + 256 {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {case}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Like `assert!` but surfaces the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` but surfaces the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Like `assert_ne!` but surfaces the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its sampled inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among the given strategies. This vendored version
/// requires all arms to be the same strategy type (which covers the
/// `Just`-list usage in this workspace).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}
