//! `proptest::collection::vec` for fixed and ranged lengths.

use std::ops::Range;

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications `vec` accepts: an exact `usize` or a `Range`.
pub trait SizeRange: Clone {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// comes from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
