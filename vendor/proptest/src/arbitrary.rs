//! `any::<T>()` for the primitive types the workspace samples.

use std::marker::PhantomData;

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Returns the canonical strategy for `T`'s full value domain.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

macro_rules! any_via_random {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}

any_via_random!(bool, u8, u32, u64, usize);

impl Strategy for Any<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut TestRng) -> i32 {
        rng.random::<u32>() as i32
    }
}

impl Strategy for Any<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        rng.random::<u64>() as i64
    }
}
