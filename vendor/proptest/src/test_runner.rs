//! Config, error type and deterministic RNG for the vendored proptest.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; only `cases` is honoured by this vendored build.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The deterministic RNG handed to strategies. Seeded from the test name,
/// so each property sees a reproducible-but-distinct stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
