//! Offline vendored facade standing in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; it never
//! calls a serializer (no `serde_json`, no `toml` — the container has no
//! registry access). The derive macros re-exported here expand to nothing,
//! so this facade only needs the trait names to exist for `use
//! serde::{Deserialize, Serialize}` to resolve.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}
