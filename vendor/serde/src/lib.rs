//! Offline vendored facade standing in for `serde`.
//!
//! The derive macros re-exported here expand to nothing — the container
//! has no registry access, so no format crate (`serde_json`, `bincode`)
//! exists to drive them. Types that need real persistence implement the
//! explicit binary codec in [`bin`] instead: `deepcam-core` serializes
//! its `CompiledModel` artifacts through [`bin::BinCodec`], and the
//! `Serialize`/`Deserialize` derives remain as no-op markers so the code
//! swaps cleanly to real serde when registry access exists.

pub mod bin;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}
