//! Minimal offline binary serialization.
//!
//! The real `serde` ecosystem pairs the derive macros with a format crate
//! (`serde_json`, `bincode`, …); neither is available in this offline
//! container, so this module supplies the one format the workspace needs:
//! a compact little-endian binary codec with explicit, hand-written
//! `encode`/`decode` implementations.
//!
//! Design points:
//!
//! * **Deterministic and bit-exact.** `f32`/`f64` round-trip through
//!   their IEEE-754 bit patterns (`to_bits`/`from_bits`), so a value
//!   decodes to *the same bits* it encoded from — the property the
//!   `CompiledModel` artifact round-trip tests rely on (NaN payloads
//!   included).
//! * **Length-prefixed, no self-description.** Collections and strings
//!   carry a `u64` length; struct fields are concatenated in declaration
//!   order. Versioning is the caller's job (the artifact header in
//!   `deepcam-core` carries a magic + format version).
//! * **Hostile-input safe.** Every read is bounds-checked and returns
//!   [`BinError`] instead of panicking; collection decodes cap their
//!   pre-allocation at the bytes actually remaining, so a corrupt length
//!   cannot trigger a huge allocation.

use std::fmt;

/// Decoding error: truncated input or an invalid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The reader ran out of bytes.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The bytes were present but do not form a valid value.
    Invalid(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} left"
                )
            }
            BinError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

/// Result alias for decoding.
pub type BinResult<T> = std::result::Result<T, BinError>;

/// An append-only byte sink for encoding.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (bit-exact).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BinError::UnexpectedEof`] when fewer than `n` remain.
    pub fn take(&mut self, n: usize) -> BinResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(BinError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input.
    pub fn get_u8(&mut self) -> BinResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input.
    pub fn get_u32(&mut self) -> BinResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input.
    pub fn get_u64(&mut self) -> BinResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` encoded as `u64`.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input;
    /// [`BinError::Invalid`] when the value exceeds this platform's
    /// `usize` range.
    pub fn get_usize(&mut self) -> BinResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| BinError::Invalid(format!("length {v} exceeds usize")))
    }

    /// Reads an `f32` from its bit pattern (bit-exact).
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input.
    pub fn get_f32(&mut self) -> BinResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its bit pattern (bit-exact).
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input.
    pub fn get_f64(&mut self) -> BinResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool byte, rejecting values other than 0/1.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input;
    /// [`BinError::Invalid`] for bytes other than 0/1.
    pub fn get_bool(&mut self) -> BinResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEof`] on truncated input;
    /// [`BinError::Invalid`] on non-UTF-8 bytes.
    pub fn get_str(&mut self) -> BinResult<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| BinError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Asserts every byte was consumed (call after the top-level decode).
    ///
    /// # Errors
    ///
    /// [`BinError::Invalid`] when trailing bytes remain.
    pub fn finish(&self) -> BinResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(BinError::Invalid(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }
}

/// A type with a hand-written binary encoding.
///
/// Implementations must encode fields in a fixed order and decode them in
/// the same order; `decode(encode(x)) == x` bit-for-bit is the contract
/// the artifact round-trip suites verify.
pub trait BinCodec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`BinError`] on truncated or invalid input.
    fn decode(r: &mut Reader<'_>) -> BinResult<Self>;
}

macro_rules! primitive_codec {
    ($ty:ty, $put:ident, $get:ident) => {
        impl BinCodec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
                r.$get()
            }
        }
    };
}

primitive_codec!(u8, put_u8, get_u8);
primitive_codec!(u32, put_u32, get_u32);
primitive_codec!(u64, put_u64, get_u64);
primitive_codec!(usize, put_usize, get_usize);
primitive_codec!(f32, put_f32, get_f32);
primitive_codec!(f64, put_f64, get_f64);
primitive_codec!(bool, put_bool, get_bool);

impl BinCodec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        r.get_str()
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        let len = r.get_usize()?;
        // Cap the pre-allocation at what could possibly fit: a corrupt
        // length then fails with UnexpectedEof instead of OOM.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: BinCodec> BinCodec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(BinError::Invalid(format!("Option tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        42u8.encode(&mut w);
        7u32.encode(&mut w);
        u64::MAX.encode(&mut w);
        123usize.encode(&mut w);
        f32::NAN.encode(&mut w);
        (-0.0f64).encode(&mut w);
        true.encode(&mut w);
        "héllo".to_string().encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u32::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(usize::decode(&mut r).unwrap(), 123);
        assert!(f32::decode(&mut r).unwrap().is_nan());
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.0f32, -2.5, f32::INFINITY];
        let o: Option<String> = Some("x".into());
        let none: Option<u32> = None;
        let mut w = Writer::new();
        v.encode(&mut w);
        o.encode(&mut w);
        none.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<f32>::decode(&mut r).unwrap(), v);
        assert_eq!(Option::<String>::decode(&mut r).unwrap(), o);
        assert_eq!(Option::<u32>::decode(&mut r).unwrap(), none);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(Vec::<u64>::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_cannot_overallocate() {
        // A Vec claiming u64::MAX elements must fail cleanly.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(Vec::<f32>::decode(&mut r).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        let mut r = Reader::new(&[7u8]);
        assert!(matches!(bool::decode(&mut r), Err(BinError::Invalid(_))));
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            Option::<u8>::decode(&mut r),
            Err(BinError::Invalid(_))
        ));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }
}
