//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! structs for downstream consumers, but nothing in-tree ever serializes —
//! there is no `serde_json`/`toml` here and no network to fetch one. These
//! derives therefore expand to nothing: the attribute compiles, the traits
//! in the vendored `serde` facade stay implementable later, and the cost is
//! zero. Swap in the real serde from crates.io when the build environment
//! gains registry access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
