//! The serving stack in one pass: compile a LeNet5 to a `DCAM`
//! artifact, index it in a [`ModelRegistry`], spawn the TCP server on
//! an ephemeral port, and round-trip one inference through a real
//! socket — asserting the served logits are **bit-identical** to the
//! in-process engine.
//!
//! Run: `cargo run --release --example serve_roundtrip`
//! (CI runs this as its serving-runtime smoke test.)

use std::sync::Arc;

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::serve::{Client, ModelRegistry, Runtime, Server, ServerConfig, SessionConfig};
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile and save the artifact a deployment would ship.
    let mut rng = seeded_rng(42);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )?;
    let dir = std::env::temp_dir().join("deepcam-serve-roundtrip");
    std::fs::create_dir_all(&dir)?;
    let artifact = dir.join("lenet5.dcam");
    engine.compiled().save(&artifact)?;
    println!("saved artifact to {}", artifact.display());

    // Registry → runtime → server, bound to an ephemeral port.
    let registry = Arc::new(ModelRegistry::open(&dir)?);
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let mut server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    // A client on a real socket.
    let mut client = Client::connect(addr)?;
    let models = client.list_models()?;
    println!(
        "models: {:?}",
        models.iter().map(|m| m.id.as_str()).collect::<Vec<_>>()
    );
    assert!(models.iter().any(|m| m.id == "lenet5"));

    // One inference round trip, checked bit-for-bit against the
    // in-process engine (micro-batching and the wire must be invisible).
    let image = init::normal(&mut seeded_rng(7), Shape::new(&[1, 1, 28, 28]), 0.0, 1.0);
    let served = client.infer("lenet5", &[1, 28, 28], image.data())?;
    let direct = engine.infer(&image)?;
    assert_eq!(
        served,
        direct.data(),
        "served logits must be bit-identical to the local engine"
    );
    println!("served logits bit-identical to the in-process engine: {served:?}");

    let stats = client.stats("lenet5")?;
    println!(
        "stats: {} submitted, {} completed over {} batch(es), p50 {:.3} ms",
        stats.submitted, stats.completed, stats.batches, stats.p50_latency_ms
    );
    assert_eq!(stats.completed, 1);

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    Ok(())
}
