//! Train a LeNet5 on the synthetic digits set, compile it for DeepCAM,
//! and compare float (BL) against CAM-based (DC) accuracy across hash
//! lengths — the workflow behind the paper's Fig. 5.
//!
//! Run: `cargo run --release --example accelerate_cnn`

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::data::synth::{generate, SynthConfig};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::models::train::{evaluate, train, TrainConfig};
use deepcam::tensor::rng::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a deterministic MNIST stand-in (see DESIGN.md §4).
    let data_cfg = SynthConfig::digits().with_samples(60, 12);
    let (train_set, test_set) = generate(&data_cfg);
    println!(
        "dataset: {} train / {} test, {} classes",
        train_set.len(),
        test_set.len(),
        train_set.classes()
    );

    // 2. Train the float model (the paper's "software baseline", BL).
    let mut rng = seeded_rng(2024);
    let mut model = scaled_lenet5(&mut rng, 10);
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    };
    for stats in train(&mut model, train_set.images(), train_set.labels(), &tc)? {
        println!(
            "epoch {}: loss {:.3}, train acc {:.1}%",
            stats.epoch,
            stats.loss,
            stats.accuracy * 100.0
        );
    }
    let bl = evaluate(&mut model, test_set.images(), test_set.labels(), 32)?;
    println!("BL (float) test accuracy: {:.1}%", bl * 100.0);
    println!();

    // 3. Compile for the CAM and evaluate at each hash length.
    println!("DC (DeepCAM) accuracy vs hash length:");
    for k in [256usize, 512, 768, 1024] {
        let engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(k),
                ..EngineConfig::default()
            },
        )?;
        let dc = engine.evaluate(test_set.images(), test_set.labels(), 32)?;
        println!(
            "  k={k:4}: {:.1}%  (BL - DC = {:+.1} pts)",
            dc * 100.0,
            (bl - dc) * 100.0
        );
    }
    Ok(())
}
