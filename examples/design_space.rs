//! Design-space exploration: sweep dataflow × CAM rows × hash plan over
//! the full-size VGG11 workload and print cycles, energy and utilization
//! — the analysis a DeepCAM architect would run before committing to a
//! configuration.
//!
//! Run: `cargo run --release --example design_space`

use deepcam::accel::sched::CamScheduler;
use deepcam::accel::{Dataflow, HashPlan, LayerIr};
use deepcam::baselines::Eyeriss;
use deepcam::models::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = zoo::vgg11();
    // Lower once through the shared compilation pipeline; every simulator
    // sweep below consumes the same IR.
    let ir = LayerIr::from_spec(&spec);
    let plans = [
        ("uniform-256", HashPlan::uniform_min()),
        ("variable", HashPlan::variable_for_dims(&ir.patch_lens())),
        ("uniform-1024", HashPlan::uniform_max()),
    ];
    let eyeriss = Eyeriss::paper_config().run_ir(&ir);
    println!(
        "workload: {} ({} MMACs); Eyeriss reference: {} cycles, {:.2} uJ",
        spec.workload(),
        spec.total_macs() / 1_000_000,
        eyeriss.total_cycles,
        eyeriss.energy_uj()
    );
    println!();
    println!(
        "{:<26} {:>12} {:>10} {:>9} {:>12} {:>12}",
        "configuration", "cycles", "energy uJ", "util %", "vs Eyeriss t", "vs Eyeriss E"
    );
    for dataflow in Dataflow::both() {
        for rows in [64usize, 128, 256, 512] {
            for (label, plan) in &plans {
                let sched = CamScheduler::new(rows, dataflow)?;
                let perf = sched.run_ir(&ir, &plan.bind(&ir)?, plan.label())?;
                println!(
                    "{:<26} {:>12} {:>10.3} {:>9.1} {:>11.1}x {:>11.1}x",
                    format!("{} r={} {}", dataflow.label(), rows, label),
                    perf.total_cycles,
                    perf.energy_uj(),
                    perf.mean_utilization() * 100.0,
                    eyeriss.total_cycles as f64 / perf.total_cycles as f64,
                    eyeriss.total_energy_j / perf.total_energy_j,
                );
            }
        }
    }
    println!();
    println!(
        "reading guide: AS dominates WS on conv workloads; the variable plan \
         recovers most of uniform-256's energy at uniform-1024's accuracy \
         (accuracy side shown by `fig5_accuracy` / `accelerate_cnn`)."
    );
    Ok(())
}
