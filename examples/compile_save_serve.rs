//! The artifact lifecycle in one pass: compile a model through the
//! staged pipeline (`Cnn → LayerIr → PlanBinding → CompiledModel`),
//! save the artifact to disk, reload it in a fresh engine, and verify
//! the reloaded engine serves **bit-identical** logits — the workflow a
//! production deployment uses so models are compiled once and served
//! everywhere.
//!
//! Run: `cargo run --release --example compile_save_serve`
//! (CI runs this as its end-to-end artifact smoke test.)

use deepcam::accel::{CompiledModel, DeepCamEngine, EngineConfig, HashPlan, LayerIr};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(42);
    let model = scaled_lenet5(&mut rng, 10);

    // Stage 1+2: lower and bind a variable plan (shape-driven here; see
    // the `tuner` bench binary for the accuracy-driven search).
    let ir = LayerIr::from_cnn(&model)?;
    let plan = HashPlan::variable_for_dims(&ir.patch_lens());
    let binding = plan.bind(&ir)?;
    println!("lowered {}: {} dot layers", ir.model_name, ir.len());
    for (dot, &k) in ir.dots.iter().zip(binding.ks()) {
        println!(
            "  [{}] {:<6} {}x{} -> k={k}",
            dot.index, dot.shape.name, dot.shape.m, dot.shape.n
        );
    }

    // Stage 3: compile to the serializable artifact and build a runtime.
    let cfg = EngineConfig {
        plan,
        ..EngineConfig::default()
    };
    let compiled = CompiledModel::compile(&model, cfg)?;
    let engine = DeepCamEngine::from_compiled(compiled)?;

    // Save — the versioned binary artifact.
    let dir = std::env::temp_dir().join("deepcam-artifacts");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("lenet5.dcam");
    engine.compiled().save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved artifact v{} to {} ({bytes} bytes)",
        deepcam::accel::ir::ARTIFACT_VERSION,
        path.display()
    );

    // Reload in a "fresh process" and serve.
    let served = DeepCamEngine::load(&path)?;
    let batch = init::normal(&mut seeded_rng(7), Shape::new(&[4, 1, 28, 28]), 0.0, 1.0);
    let direct = engine.infer(&batch)?;
    let reloaded = served.infer(&batch)?;
    assert_eq!(
        direct.data(),
        reloaded.data(),
        "reloaded artifact must serve bit-identical logits"
    );
    println!(
        "served {} images through the reloaded artifact: logits bit-identical to the \
         in-memory compile",
        batch.shape().dim(0)
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
