//! Quickstart: the DeepCAM idea in sixty lines.
//!
//! Demonstrates the paper's core trick end to end: replace a
//! multiply-accumulate dot-product with (1) random-hyperplane hashing,
//! (2) a Hamming-distance search in a CAM array, and (3) a cheap
//! cosine/norm reconstruction.
//!
//! Run: `cargo run --release --example quickstart`

use deepcam::cam::{CamArray, CamConfig};
use deepcam::hash::geometric::GeometricDot;
use deepcam::hash::ContextGenerator;
use deepcam::tensor::rng::{fill_normal, seeded_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §II-B worked example: algebraic dot-product = 2.0765.
    let x = [0.6012f32, 0.8383, 0.6859, 0.5712];
    let y = [0.9044f32, 0.5352, 0.8110, 0.9243];
    println!(
        "algebraic x.y           = {:.4}",
        GeometricDot::algebraic(&x, &y)?
    );
    for k in [64usize, 256, 1024] {
        let gd = GeometricDot::new(4, k, 7)?;
        println!("geometric approx (k={k:4}) = {:.4}", gd.dot(&x, &y)?);
    }

    // Now the same computation the way the chip does it: contexts stored
    // in a CAM, searched in parallel.
    println!();
    println!("-- CAM-based batch of dot-products --");
    let dim = 32;
    let k = 1024;
    let generator = ContextGenerator::new(dim, k, 42)?;

    // Eight stored vectors (e.g. kernel contexts) loaded into CAM rows.
    let mut rng = seeded_rng(1);
    let mut stored = Vec::new();
    let mut stored_ctx = Vec::new();
    for _ in 0..8 {
        let mut v = vec![0.0f32; dim];
        fill_normal(&mut rng, &mut v, 0.0, 1.0);
        stored_ctx.push(generator.context_for(&v)?);
        stored.push(v);
    }
    let mut cam = CamArray::new(CamConfig::new(64, k)?);
    for (row, ctx) in stored_ctx.iter().enumerate() {
        cam.write_row(row, ctx.bits.clone())?;
    }

    // One query (e.g. an activation context) searched against all rows at
    // once — O(1) array time, every match line evaluates in parallel.
    let mut q = vec![0.0f32; dim];
    fill_normal(&mut rng, &mut q, 0.0, 1.0);
    let q_ctx = generator.context_for(&q)?;
    println!("row  algebraic   deepcam   |error|");
    for hit in cam.search(&q_ctx.bits)? {
        let theta = GeometricDot::angle_from_hamming(hit.sensed, k);
        let approx = q_ctx.quantized_norm()
            * stored_ctx[hit.row].quantized_norm()
            * deepcam::hash::cosine::approx_cosine(theta);
        let exact = GeometricDot::algebraic(&q, &stored[hit.row])?;
        println!(
            "{:3}  {:9.4}  {:8.4}  {:7.4}",
            hit.row,
            exact,
            approx,
            (exact - approx).abs()
        );
    }
    println!();
    // The Hamming angle estimator has std-dev ~pi/(2*sqrt(k)); for unit
    // Gaussian 32-dim operands that is an absolute error scale of
    // ~||a||*||b||*pi/(2*sqrt(k)) ≈ 1.6 here. CNNs tolerate this (Fig. 5).
    println!(
        "expected |error| scale at k={k}: ~{:.2}",
        32.0 * std::f32::consts::PI / (2.0 * (k as f32).sqrt())
    );
    println!(
        "utilization: {:.1}% of CAM rows occupied",
        cam.utilization() * 100.0
    );
    Ok(())
}
