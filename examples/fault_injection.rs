//! Non-ideality study: how crossbar device noise and sense-amplifier
//! quantization affect DeepCAM's functional accuracy.
//!
//! The paper assumes ideal hashing and sensing; a real FeFET crossbar
//! disturbs the pre-sign projection, and the clocked sense amplifier
//! quantizes Hamming distances. This example measures both effects —
//! the kind of robustness analysis a deployment would need.
//!
//! Run: `cargo run --release --example fault_injection`

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::cam::SenseModel;
use deepcam::data::synth::{generate, SynthConfig};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::models::train::{evaluate, train, TrainConfig};
use deepcam::tensor::rng::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_set, test_set) = generate(&SynthConfig::digits().with_samples(60, 10));
    let mut rng = seeded_rng(7);
    let mut model = scaled_lenet5(&mut rng, 10);
    train(
        &mut model,
        train_set.images(),
        train_set.labels(),
        &TrainConfig {
            epochs: 3,
            batch_size: 32,
            lr: 0.03,
            ..TrainConfig::default()
        },
    )?;
    let bl = evaluate(&mut model, test_set.images(), test_set.labels(), 32)?;
    println!("BL (float) accuracy: {:.1}%", bl * 100.0);
    println!();

    println!("crossbar device noise (relative to patch norm) at k=512:");
    for noise in [0.0f32, 0.05, 0.1, 0.2, 0.4] {
        let engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(512),
                crossbar_noise: noise,
                ..EngineConfig::default()
            },
        )?;
        let acc = engine.evaluate(test_set.images(), test_set.labels(), 32)?;
        println!("  sigma = {noise:4.2}: {:5.1}%", acc * 100.0);
    }
    println!();

    println!("sense-amplifier quantization (std-alone readout error, k=1024 words):");
    for levels in [4usize, 8, 16, 64, 256] {
        let sense = SenseModel::Clocked { levels };
        let max_err = sense.max_error(1024);
        println!(
            "  {levels:3} clock levels: worst-case HD readout error {max_err:4} bits \
             (of 1024)"
        );
    }
    println!();
    println!(
        "reading guide: hash-sign decisions are robust to moderate analog noise \
         (errors only flip near-zero projections), and the self-referenced SA \
         resolves small Hamming distances — where dot-products are largest — \
         almost exactly."
    );
    Ok(())
}
